//! Fig. 9: bits needed to *guarantee* a PWE tolerance, regardless of
//! average error — the error-bounded compressors (SPERR, SZ, ZFP, MGARD)
//! on the Table II field/level matrix. TTHRESH is absent (no error-
//! bounded mode); MGARD is dropped at idx = 40 where it "gives results
//! obviously exceeding the error tolerance". Expected: SPERR uses the
//! fewest bits in all but a couple of cases.

use sperr_compress_api::{Bound, LossyCompressor};
use sperr_core::{Sperr, SperrConfig};

fn main() {
    sperr_bench::banner(
        "Fig. 9 — achieved bitrate under a guaranteed PWE tolerance",
        "Figure 9 (Table II matrix; SPERR vs SZ vs ZFP vs MGARD)",
    );
    let sperr = Sperr::new(SperrConfig::default());
    let sz = sperr_sz_like::SzLike::default();
    let zfp = sperr_zfp_like::ZfpLike::default();
    let mgard = sperr_mgard_like::MgardLike;

    println!("case,compressor,bpp,max_pwe_over_t,honours_t");
    for (f, idx) in sperr_bench::table2_matrix() {
        let field = sperr_bench::bench_field(f);
        let t = field.tolerance_for_idx(idx);
        for (name, comp) in [
            ("SPERR", &sperr as &dyn LossyCompressor),
            ("SZ-like", &sz),
            ("ZFP-like", &zfp),
            ("MGARD-like", &mgard),
        ] {
            if name == "MGARD-like" && idx >= 40 {
                // paper: "MGARD is also not presented at idx = 40 ...
                // because it gives results obviously exceeding the error
                // tolerance"
                continue;
            }
            match comp.compress(&field, Bound::Pwe(t)) {
                Ok(stream) => {
                    let rec = comp.decompress(&stream).expect("decode");
                    let bpp = stream.len() as f64 * 8.0 / field.len() as f64;
                    let e = sperr_metrics::max_pwe(&field.data, &rec.data);
                    println!(
                        "{},{name},{bpp:.4},{:.3},{}",
                        f.abbrev(idx),
                        e / t,
                        e <= t
                    );
                }
                Err(e) => println!("{},{name},,,error: {e}", f.abbrev(idx)),
            }
        }
    }
}
