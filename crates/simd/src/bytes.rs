//! Byte-lane kernels: horizontal/elementwise/pairwise maxima for the
//! significance pyramid, and the SWAR movemask-style run scan that feeds
//! SPECK's run-coalesced zero emission.

use crate::Lane;

/// Block width for the generic integer max kernels. 16 lanes is one SSE2
/// register of `u8`, two of `u32`, four of `u64`; LLVM splits or fuses as
/// the lane width dictates.
const W: usize = 16;

/// Horizontal maximum of a slice (`T::default()` for an empty one).
///
/// Scalar twin: [`scalar_max_elem`].
pub fn max_elem<T: Lane>(a: &[T]) -> T {
    #[cfg(feature = "force-scalar")]
    return scalar_max_elem(a);
    #[cfg(not(feature = "force-scalar"))]
    {
        let mut chunks = a.chunks_exact(W);
        let mut acc = [T::default(); W];
        for c in chunks.by_ref() {
            // One independent max tree per lane: vectorizes to a pmaxu-
            // style op per block, horizontal reduction only at the end.
            for (l, &v) in acc.iter_mut().zip(c) {
                *l = (*l).max(v);
            }
        }
        let mut m = T::default();
        for &v in &acc {
            m = m.max(v);
        }
        for &v in chunks.remainder() {
            m = m.max(v);
        }
        m
    }
}

/// Scalar reference for [`max_elem`].
pub fn scalar_max_elem<T: Lane>(a: &[T]) -> T {
    a.iter().copied().fold(T::default(), T::max)
}

/// Elementwise `dst[i] = max(dst[i], src[i])`. Slices must be equal
/// length. Scalar twin: [`scalar_max_assign`].
pub fn max_assign<T: Lane>(dst: &mut [T], src: &[T]) {
    assert_eq!(dst.len(), src.len());
    #[cfg(feature = "force-scalar")]
    return scalar_max_assign(dst, src);
    #[cfg(not(feature = "force-scalar"))]
    {
        // Straight-line elementwise loop over equal-length slices: the
        // assert above lets LLVM drop the bounds checks and vectorize.
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = (*d).max(s);
        }
    }
}

/// Scalar reference for [`max_assign`].
pub fn scalar_max_assign<T: Lane>(dst: &mut [T], src: &[T]) {
    assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = (*d).max(s);
    }
}

/// Pairwise horizontal maximum: `dst[i] = max(src[2i], src[2i+1])`, with
/// an odd trailing element passing through unchanged. `dst` must hold
/// `ceil(src.len() / 2)` elements. This is one axis-0 halving step of the
/// max pyramid. Scalar twin: [`scalar_pairwise_max_into`].
pub fn pairwise_max_into<T: Lane>(src: &[T], dst: &mut [T]) {
    assert_eq!(dst.len(), src.len().div_ceil(2));
    #[cfg(feature = "force-scalar")]
    return scalar_pairwise_max_into(src, dst);
    #[cfg(not(feature = "force-scalar"))]
    {
        let pairs = src.len() / 2;
        let (dst_pairs, dst_tail) = dst.split_at_mut(pairs);
        // chunks_exact(2) + zip: a stride-2 interleaved-load pattern LLVM
        // recognizes (shuffle + vertical max), scalar tail below.
        for (d, p) in dst_pairs.iter_mut().zip(src.chunks_exact(2)) {
            *d = p[0].max(p[1]);
        }
        if let Some(d) = dst_tail.first_mut() {
            *d = src[src.len() - 1];
        }
    }
}

/// Scalar reference for [`pairwise_max_into`].
pub fn scalar_pairwise_max_into<T: Lane>(src: &[T], dst: &mut [T]) {
    assert_eq!(dst.len(), src.len().div_ceil(2));
    for (i, d) in dst.iter_mut().enumerate() {
        let a = src[2 * i];
        *d = match src.get(2 * i + 1) {
            Some(&b) => a.max(b),
            None => a,
        };
    }
}

/// Length of the longest prefix of `bytes` in which every byte is
/// `<= t`. Requires `t < 128` and every byte `< 128` (SPECK's packed
/// `msb_plus1` values are at most 64, bitplane indices at most 63).
///
/// This is the movemask-style significance scan: 8 lanes are tested per
/// step with one SWAR compare — `b > t` sets lane bit 7 of
/// `b + (127 - t)` exactly when `b, t < 128` — and the first significant
/// lane is located with a trailing-zeros count. The returned run length
/// feeds the coder's bulk zero emission and `copy_within` retention.
/// Scalar twin: [`scalar_run_le`].
pub fn run_le(bytes: &[u8], t: u8) -> usize {
    debug_assert!(t < 128);
    #[cfg(feature = "force-scalar")]
    return scalar_run_le(bytes, t);
    #[cfg(not(feature = "force-scalar"))]
    {
        const HI: u64 = 0x8080_8080_8080_8080;
        const LO: u64 = 0x0101_0101_0101_0101;
        let bias = LO * (127 - t) as u64;
        let mut chunks = bytes.chunks_exact(8);
        let mut run = 0usize;
        for c in chunks.by_ref() {
            let w = u64::from_le_bytes(c.try_into().unwrap());
            debug_assert_eq!(w & HI, 0, "run_le bytes must be < 128");
            let mask = w.wrapping_add(bias) & HI;
            if mask != 0 {
                return run + (mask.trailing_zeros() / 8) as usize;
            }
            run += 8;
        }
        for &b in chunks.remainder() {
            if b > t {
                return run;
            }
            run += 1;
        }
        run
    }
}

/// Scalar reference for [`run_le`].
pub fn scalar_run_le(bytes: &[u8], t: u8) -> usize {
    bytes.iter().take_while(|&&b| b <= t).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_le_basic() {
        assert_eq!(run_le(&[], 5), 0);
        assert_eq!(run_le(&[5, 5, 5], 5), 3);
        assert_eq!(run_le(&[6], 5), 0);
        assert_eq!(run_le(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 1], 8), 8);
        let long: Vec<u8> = (0..100).map(|i| if i == 77 { 64 } else { 3 }).collect();
        assert_eq!(run_le(&long, 63), 77);
        assert_eq!(run_le(&long, 64), 100);
    }

    #[test]
    fn pairwise_odd_tail() {
        let src = [3u8, 1, 4, 1, 5];
        let mut dst = [0u8; 3];
        pairwise_max_into(&src, &mut dst);
        assert_eq!(dst, [3, 4, 5]);
    }

    #[test]
    fn max_kernels_match_scalar_u64() {
        let v: Vec<u64> = (0..37).map(|i| (i * 2654435761u64) >> 13).collect();
        assert_eq!(max_elem(&v), scalar_max_elem(&v));
        let mut a = v.clone();
        let mut b = v.clone();
        a.reverse();
        let mut a2 = a.clone();
        max_assign(&mut a, &v);
        scalar_max_assign(&mut a2, &v);
        assert_eq!(a, a2);
        b.rotate_left(5);
        let mut d1 = vec![0u64; b.len().div_ceil(2)];
        let mut d2 = d1.clone();
        pairwise_max_into(&b, &mut d1);
        scalar_pairwise_max_into(&b, &mut d2);
        assert_eq!(d1, d2);
    }
}
