//! Fault-injection campaign for the streaming pipeline.
//!
//! The streaming API's contract is: on success, byte-identical output to
//! the in-memory path; on *any* failure — endpoint I/O errors, corrupt
//! streams, worker panics at any pipeline stage — a clean typed
//! [`SperrError`], never a panic escaping the API, never a hang, and
//! never a partial container that passes `verify`. This module attacks
//! that contract from every seam:
//!
//! * [`FaultyReader`]: short reads (arbitrary per-call byte caps) and
//!   scripted `ErrorKind` injection at randomized byte offsets.
//! * [`FaultyWriter`]: scripted write errors at randomized offsets and a
//!   zero-progress mode (`Ok(0)` forever, the nastiest `Write` impl that
//!   is still legal) — plus capture of whatever bytes made it out, so the
//!   campaign can prove partial output never verifies.
//! * Scripted worker-panic injection at each pipeline stage via the
//!   core's `faultpoint` hooks, including the ingest/emit/container
//!   stages that run on the caller thread.
//! * An in-flight-budget stress proving bounded memory (via the
//!   `peak_in_flight` gauge) and, implicitly through the watchdog, no
//!   deadlock.
//!
//! Run as `sperr-conformance faults [N]`; a watchdog aborts the process
//! (exit 99) if the campaign wedges, so a back-pressure deadlock fails CI
//! loudly instead of timing out the whole job.

use std::io::{ErrorKind, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::{rngs::StdRng, Rng, SeedableRng};
use sperr_compress_api::{Bound, Field, LossyCompressor, Precision};
use sperr_core::{
    faultpoint, stage_labels, ChunkStatus, Sperr, SperrConfig, SperrError, STAGE_CONTAINER,
    STAGE_EMIT, STAGE_INGEST,
};

use crate::oracle::{CheckFailure, CheckResult};

fn fail(check: &'static str, detail: String) -> CheckResult {
    Err(CheckFailure { check, detail })
}

/// Uniform draw in `[lo, hi]` (the offline rand shim has no ranges).
fn rand_in(rng: &mut StdRng, lo: usize, hi: usize) -> usize {
    lo + (rng.next_u64() as usize) % (hi - lo + 1)
}

// ---------------------------------------------------------------------
// Fault adapters
// ---------------------------------------------------------------------

/// A reader over an in-memory byte slice that misbehaves on demand:
/// serves at most `max_per_call` bytes per `read` (exercising short-read
/// handling) and/or fails with `kind` once `fail_at` bytes have been
/// served.
pub struct FaultyReader<'a> {
    data: &'a [u8],
    pos: usize,
    /// Per-call byte cap; `usize::MAX` = unlimited.
    pub max_per_call: usize,
    /// Fail as soon as `pos` reaches the offset, with the given kind.
    pub fail_at: Option<(usize, ErrorKind)>,
}

impl<'a> FaultyReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        FaultyReader { data, pos: 0, max_per_call: usize::MAX, fail_at: None }
    }

    /// Serves at most `max_per_call` bytes per call.
    pub fn short(data: &'a [u8], max_per_call: usize) -> Self {
        FaultyReader { max_per_call, ..FaultyReader::new(data) }
    }

    /// Fails with `kind` once `at` bytes have been served.
    pub fn failing(data: &'a [u8], at: usize, kind: ErrorKind) -> Self {
        FaultyReader { fail_at: Some((at, kind)), ..FaultyReader::new(data) }
    }
}

impl Read for FaultyReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if let Some((at, kind)) = self.fail_at {
            if self.pos >= at {
                return Err(std::io::Error::new(kind, "injected read fault"));
            }
        }
        let remaining = self.data.len() - self.pos;
        let mut n = buf.len().min(self.max_per_call).min(remaining);
        // Stop short of the scripted failure point so it fires exactly at
        // the requested offset rather than being jumped over.
        if let Some((at, _)) = self.fail_at {
            if at > self.pos {
                n = n.min(at - self.pos);
            }
        }
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A writer that captures everything written (for partial-output
/// inspection) and misbehaves on demand: fails with `kind` once
/// `fail_at` bytes have been accepted, or — in zero-progress mode —
/// returns `Ok(0)` forever from that point, which a conforming caller
/// must turn into `ErrorKind::WriteZero` rather than spinning.
#[derive(Default)]
pub struct FaultyWriter {
    /// Bytes accepted before the fault point.
    pub written: Vec<u8>,
    /// Byte offset at which to start misbehaving.
    pub fail_at: Option<usize>,
    /// Error kind to return; `None` with `fail_at` set = zero-progress.
    pub kind: Option<ErrorKind>,
}

impl FaultyWriter {
    /// Fails with `kind` once `at` bytes have been accepted.
    pub fn failing(at: usize, kind: ErrorKind) -> Self {
        FaultyWriter { fail_at: Some(at), kind: Some(kind), ..FaultyWriter::default() }
    }

    /// Accepts `at` bytes, then makes no progress ever again.
    pub fn zero_progress(at: usize) -> Self {
        FaultyWriter { fail_at: Some(at), kind: None, ..FaultyWriter::default() }
    }
}

impl Write for FaultyWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let budget = match self.fail_at {
            Some(at) => at.saturating_sub(self.written.len()),
            None => buf.len(),
        };
        if budget == 0 {
            return match self.kind {
                Some(kind) => Err(std::io::Error::new(kind, "injected write fault")),
                None => Ok(0),
            };
        }
        let n = buf.len().min(budget);
        self.written.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------

/// Aborts the process if the campaign has not finished within the
/// deadline — a hang (e.g. a back-pressure deadlock) must fail CI
/// loudly, not eat the job's timeout.
struct Watchdog {
    done: Arc<AtomicBool>,
}

impl Watchdog {
    fn arm(deadline: Duration) -> Watchdog {
        let done = Arc::new(AtomicBool::new(false));
        let flag = done.clone();
        std::thread::spawn(move || {
            let start = std::time::Instant::now();
            while start.elapsed() < deadline {
                if flag.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(200));
            }
            eprintln!(
                "FAIL [watchdog] fault campaign exceeded {}s — presumed deadlock",
                deadline.as_secs()
            );
            std::process::exit(99);
        });
        Watchdog { done }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Relaxed);
    }
}

/// Silences the default panic hook for the duration of the injection
/// runs (every injected fault is a caught panic — the backtrace spam
/// would drown real output), restoring it on drop.
struct QuietPanics;

impl QuietPanics {
    fn install() -> QuietPanics {
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        let _ = std::panic::take_hook();
    }
}

// ---------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------

/// Test volume: non-divisible dims so boundary chunks exist on every
/// axis, several z-layers so back-pressure actually engages.
fn campaign_field() -> Field {
    Field::from_fn([20, 12, 24], |x, y, z| {
        (x as f64 * 0.31).sin() * 40.0
            + (y as f64 * 0.17).cos() * 15.0
            + ((x * z) as f64 * 0.011).sin() * 6.0
            + z as f64 * 0.8
    })
}

fn campaign_config(threads: usize) -> SperrConfig {
    SperrConfig { chunk_dims: [8, 8, 8], num_threads: threads, ..SperrConfig::default() }
}

fn raw_f64(field: &Field) -> Vec<u8> {
    let mut out = Vec::with_capacity(field.data.len() * 8);
    for &v in &field.data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

const BOUND: Bound = Bound::Pwe(1e-3);

/// Runs the whole fault-injection campaign; `cases` scales the number of
/// randomized offsets per attack. Returns the (hopefully empty) failure
/// list.
pub fn run_fault_campaign(cases: usize) -> Vec<CheckFailure> {
    let _watchdog = Watchdog::arm(Duration::from_secs(600));
    let mut failures = Vec::new();
    let mut rng = StdRng::seed_from_u64(0xfa17_1417);

    let field = campaign_field();
    let raw = raw_f64(&field);
    let dims = field.dims;
    let sperr = Sperr::new(campaign_config(4));
    let reference = match sperr.compress(&field, BOUND) {
        Ok(s) => s,
        Err(e) => {
            failures.push(CheckFailure {
                check: "fault-setup",
                detail: format!("reference compression failed: {e}"),
            });
            return failures;
        }
    };
    let mut push = |r: CheckResult| {
        if let Err(f) = r {
            failures.push(f);
        }
    };

    push(short_reads_byte_identical(&sperr, &raw, dims, &reference));
    for _ in 0..cases.max(4) {
        let at = rand_in(&mut rng, 0, raw.len() - 1);
        push(read_error_is_typed(&sperr, &raw, dims, at));
        let wat = rand_in(&mut rng, 0, reference.len() - 1);
        push(write_error_is_typed_and_partial_never_verifies(
            &sperr, &raw, dims, &reference, wat,
        ));
    }
    push(zero_progress_writer_errors(&sperr, &raw, dims, &reference));
    push(stage_panics_cancel_cleanly(&raw, dims, &reference));
    push(budget_stress_bounded_and_identical(&mut rng, cases));
    push(resilient_stream_salvages_corruption(&field));

    failures
}

/// Short reads (including caps that straddle scalar boundaries) must be
/// invisible: same bytes out as the in-memory path.
fn short_reads_byte_identical(
    sperr: &Sperr,
    raw: &[u8],
    dims: [usize; 3],
    reference: &[u8],
) -> CheckResult {
    for cap in [1usize, 3, 7, 64, 1021] {
        let mut out = Vec::new();
        match sperr.compress_stream(
            FaultyReader::short(raw, cap),
            &mut out,
            dims,
            Precision::Double,
            BOUND,
        ) {
            Ok(_) => {
                if out != reference {
                    return fail(
                        "fault-short-read",
                        format!("cap {cap}: output diverged from in-memory path"),
                    );
                }
            }
            Err(e) => {
                return fail("fault-short-read", format!("cap {cap}: unexpected error {e}"))
            }
        }
    }
    Ok(())
}

/// A mid-stream read error must surface as `SperrError::Io` with the
/// injected kind, with nothing written to the output.
fn read_error_is_typed(
    sperr: &Sperr,
    raw: &[u8],
    dims: [usize; 3],
    at: usize,
) -> CheckResult {
    let mut writer = FaultyWriter::default();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        sperr.compress_stream(
            FaultyReader::failing(raw, at, ErrorKind::ConnectionReset),
            &mut writer,
            dims,
            Precision::Double,
            BOUND,
        )
    }));
    match outcome {
        Err(_) => fail("fault-read-error", format!("offset {at}: panic escaped the API")),
        Ok(Ok(_)) => fail(
            "fault-read-error",
            format!("offset {at}: compression succeeded despite injected read fault"),
        ),
        Ok(Err(SperrError::Io { kind, stage, .. })) => {
            if kind != ErrorKind::ConnectionReset {
                fail("fault-read-error", format!("offset {at}: wrong kind {kind:?} ({stage})"))
            } else if !writer.written.is_empty() {
                fail(
                    "fault-read-error",
                    format!(
                        "offset {at}: {} bytes written despite failed ingest",
                        writer.written.len()
                    ),
                )
            } else {
                Ok(())
            }
        }
        Ok(Err(other)) => {
            fail("fault-read-error", format!("offset {at}: wrong error class {other}"))
        }
    }
}

/// A write error at any offset must surface as `SperrError::Io`, and the
/// partial container left behind must not pass verification.
fn write_error_is_typed_and_partial_never_verifies(
    sperr: &Sperr,
    raw: &[u8],
    dims: [usize; 3],
    reference: &[u8],
    at: usize,
) -> CheckResult {
    let mut writer = FaultyWriter::failing(at, ErrorKind::StorageFull);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        sperr.compress_stream(
            FaultyReader::new(raw),
            &mut writer,
            dims,
            Precision::Double,
            BOUND,
        )
    }));
    match outcome {
        Err(_) => return fail("fault-write-error", format!("offset {at}: panic escaped")),
        Ok(Ok(_)) => {
            return fail(
                "fault-write-error",
                format!("offset {at}: compression succeeded despite injected write fault"),
            )
        }
        Ok(Err(SperrError::Io { kind: ErrorKind::StorageFull, .. })) => {}
        Ok(Err(other)) => {
            return fail("fault-write-error", format!("offset {at}: wrong error {other}"))
        }
    }
    let partial = &writer.written;
    if partial.len() >= reference.len() {
        return fail(
            "fault-write-error",
            format!("offset {at}: writer accepted the whole stream yet errored"),
        );
    }
    // The partial container must fail verification — a truncated stream
    // that verifies clean would defeat the whole point of checksums.
    match sperr.verify(partial) {
        Err(_) => Ok(()),
        Ok(report) => {
            if report.checksummed && report.is_ok() {
                fail(
                    "fault-partial-verify",
                    format!(
                        "offset {at}: {}-byte partial container passed verification",
                        partial.len()
                    ),
                )
            } else {
                Ok(())
            }
        }
    }
}

/// A `Write` impl that accepts nothing must produce `WriteZero`, not an
/// infinite retry loop (the watchdog catches the loop case).
fn zero_progress_writer_errors(
    sperr: &Sperr,
    raw: &[u8],
    dims: [usize; 3],
    reference: &[u8],
) -> CheckResult {
    for at in [0usize, 10, reference.len() / 2] {
        let mut writer = FaultyWriter::zero_progress(at);
        match sperr.compress_stream(
            FaultyReader::new(raw),
            &mut writer,
            dims,
            Precision::Double,
            BOUND,
        ) {
            Err(SperrError::Io { kind: ErrorKind::WriteZero, .. }) => {}
            Ok(_) => {
                return fail(
                    "fault-zero-progress",
                    format!("at {at}: succeeded against a zero-progress writer"),
                )
            }
            Err(other) => {
                return fail("fault-zero-progress", format!("at {at}: wrong error {other}"))
            }
        }
    }
    Ok(())
}

/// Arms a one-shot panic at every pipeline stage in turn (encode and
/// decode sides, worker and caller threads) and checks: the error is
/// `SperrError::Panic` carrying the stage and the injected message, the
/// fault actually fired, and the very next clean run over the same
/// pipeline produces reference bytes — i.e. cancellation left no debris.
fn stage_panics_cancel_cleanly(
    raw: &[u8],
    dims: [usize; 3],
    reference: &[u8],
) -> CheckResult {
    let _quiet = QuietPanics::install();
    // (label, trigger): trigger > 0 spreads the fault onto later chunks /
    // other worker slots, but caller-thread stages that run once per
    // stream (ingest prologue, container, the compress-side emit) must
    // trigger on their first hit.
    let compress_stages: &[(&str, usize)] = &[
        (stage_labels::WAVELET_FORWARD, 2),
        (stage_labels::SPECK_ENCODE, 1),
        (stage_labels::OUTLIER_LOCATE, 2),
        (stage_labels::OUTLIER_ENCODE, 0),
        (STAGE_INGEST, 2),
        (STAGE_CONTAINER, 0),
        (STAGE_EMIT, 0),
    ];
    let decode_stages: &[(&str, usize)] = &[
        (stage_labels::SPECK_DECODE, 2),
        (stage_labels::WAVELET_INVERSE, 1),
        (stage_labels::OUTLIER_APPLY, 0),
        (STAGE_INGEST, 0),
        (STAGE_CONTAINER, 0),
        (STAGE_EMIT, 2),
    ];
    for threads in [1usize, 4] {
        let sperr = Sperr::new(campaign_config(threads));
        for (decode_side, stages) in [(false, compress_stages), (true, decode_stages)] {
            for &(label, trigger) in stages.iter() {
                faultpoint::arm(label, trigger);
                let result = if decode_side {
                    let mut out = Vec::new();
                    sperr
                        .decompress_stream(FaultyReader::new(reference), &mut out, None)
                        .map(|_| ())
                } else {
                    let mut out = Vec::new();
                    sperr
                        .compress_stream(
                            FaultyReader::new(raw),
                            &mut out,
                            dims,
                            Precision::Double,
                            BOUND,
                        )
                        .map(|_| ())
                };
                let fired = !faultpoint::is_armed();
                faultpoint::disarm();
                let side = if decode_side { "decode" } else { "encode" };
                match result {
                    Err(SperrError::Panic { stage, message, .. }) => {
                        if !message.contains("injected fault") {
                            return fail(
                                "fault-stage-panic",
                                format!("{side} {label} t{threads}: lost panic message: {message}"),
                            );
                        }
                        if stage != label {
                            return fail(
                                "fault-stage-panic",
                                format!(
                                    "{side} {label} t{threads}: panic attributed to {stage}"
                                ),
                            );
                        }
                    }
                    Err(other) => {
                        return fail(
                            "fault-stage-panic",
                            format!("{side} {label} t{threads}: wrong error class {other}"),
                        )
                    }
                    Ok(()) => {
                        if fired {
                            return fail(
                                "fault-stage-panic",
                                format!("{side} {label} t{threads}: fault fired but run succeeded"),
                            );
                        }
                        return fail(
                            "fault-stage-panic",
                            format!(
                                "{side} {label} t{threads}: stage never reached — stale label?"
                            ),
                        );
                    }
                }
                // Recovery: the same Sperr instance must still produce
                // clean, reference-identical output.
                let mut out = Vec::new();
                match sperr.compress_stream(
                    FaultyReader::new(raw),
                    &mut out,
                    dims,
                    Precision::Double,
                    BOUND,
                ) {
                    Ok(_) if out == reference => {}
                    Ok(_) => {
                        return fail(
                            "fault-stage-recovery",
                            format!("{side} {label} t{threads}: post-fault output diverged"),
                        )
                    }
                    Err(e) => {
                        return fail(
                            "fault-stage-recovery",
                            format!("{side} {label} t{threads}: post-fault run failed: {e}"),
                        )
                    }
                }
            }
        }
    }
    Ok(())
}

/// Tiny budgets over a many-layer volume: `peak_in_flight` must respect
/// the effective budget and the output must stay byte-identical, across
/// thread counts and randomized budgets. A deadlock here trips the
/// watchdog.
fn budget_stress_bounded_and_identical(rng: &mut StdRng, cases: usize) -> CheckResult {
    // One chunk per layer, 16 layers: the layer floor is 1, so tiny
    // budgets are honored exactly as configured.
    let field = Field::from_fn([8, 8, 128], |x, y, z| {
        ((x + 2 * y) as f64 * 0.21).sin() * 25.0 + (z as f64 * 0.05).cos() * 10.0
    });
    let raw = raw_f64(&field);
    let reference = Sperr::new(campaign_config(1))
        .compress(&field, BOUND)
        .map_err(|e| CheckFailure {
            check: "fault-budget",
            detail: format!("reference failed: {e}"),
        })?;
    for i in 0..cases.max(4).min(24) {
        let budget = rand_in(rng, 1, 4);
        let threads = [2, 4, 8][i % 3];
        let sperr = Sperr::new(SperrConfig {
            in_flight_chunks: budget,
            ..campaign_config(threads)
        });
        let mut out = Vec::new();
        let report = sperr
            .compress_stream(FaultyReader::new(&raw), &mut out, field.dims, Precision::Double, BOUND)
            .map_err(|e| CheckFailure {
                check: "fault-budget",
                detail: format!("budget {budget} threads {threads}: {e}"),
            })?;
        if report.peak_in_flight > report.in_flight_budget {
            return fail(
                "fault-budget",
                format!(
                    "budget {budget} threads {threads}: peak {} exceeded budget {}",
                    report.peak_in_flight, report.in_flight_budget
                ),
            );
        }
        if out != reference {
            return fail(
                "fault-budget",
                format!("budget {budget} threads {threads}: output diverged"),
            );
        }
        // Decode side under the same pressure.
        let mut round = Vec::new();
        let dreport = sperr
            .decompress_stream(FaultyReader::new(&reference), &mut round, None)
            .map_err(|e| CheckFailure {
                check: "fault-budget",
                detail: format!("decode budget {budget} threads {threads}: {e}"),
            })?;
        if dreport.peak_in_flight > dreport.in_flight_budget {
            return fail(
                "fault-budget",
                format!(
                    "decode budget {budget} threads {threads}: peak {} exceeded budget {}",
                    dreport.peak_in_flight, dreport.in_flight_budget
                ),
            );
        }
    }
    Ok(())
}

/// Streaming resilient decode over a corrupted container must report the
/// bad chunk and match the in-memory resilient decode's output exactly.
fn resilient_stream_salvages_corruption(field: &Field) -> CheckResult {
    let sperr = Sperr::new(SperrConfig {
        lossless: false,
        ..campaign_config(4)
    });
    let stream = sperr.compress(field, BOUND).map_err(|e| CheckFailure {
        check: "fault-resilient",
        detail: format!("setup failed: {e}"),
    })?;
    let info = sperr.inspect(&stream).map_err(|e| CheckFailure {
        check: "fault-resilient",
        detail: format!("inspect failed: {e}"),
    })?;
    let mut bad = stream.clone();
    // Corrupt the middle of the second chunk's payload.
    let off = 1 + info.payload_offset + info.chunk_payload_sizes[0] + 2;
    bad[off] ^= 0x5A;

    let (ref_field, ref_report) = sperr.decompress_resilient(&bad).map_err(|e| CheckFailure {
        check: "fault-resilient",
        detail: format!("in-memory resilient decode failed: {e}"),
    })?;
    let mut out = Vec::new();
    let res = sperr
        .decompress_stream_resilient(FaultyReader::new(&bad), &mut out, None)
        .map_err(|e| CheckFailure {
            check: "fault-resilient",
            detail: format!("streaming resilient decode failed: {e}"),
        })?;
    if res.statuses != ref_report.statuses {
        return fail(
            "fault-resilient",
            format!(
                "status divergence: streaming {:?} vs in-memory {:?}",
                res.statuses, ref_report.statuses
            ),
        );
    }
    if res.statuses.iter().all(|s| matches!(s, ChunkStatus::Ok)) {
        return fail("fault-resilient", "corruption went undetected".into());
    }
    let mut want = Vec::with_capacity(ref_field.data.len() * 8);
    for &v in &ref_field.data {
        want.extend_from_slice(&v.to_le_bytes());
    }
    if out != want {
        return fail("fault-resilient", "streamed salvage output diverged".into());
    }
    Ok(())
}
