//! The progressive-refinement campaign: randomized fields decoded at
//! increasing per-chunk byte budgets, asserting the embedded-coding
//! contract end-to-end.
//!
//! Each case synthesizes a spiky random field (the same generator as the
//! PWE campaign), encodes it size-bounded (BPP mode — no outlier stream,
//! so the SPECK truncation story is exercised in isolation), then decodes
//! three previews at budgets `b1 < b2 < full` and asserts:
//!
//! * **monotone refinement**: the achieved max point-wise error never
//!   increases as the budget grows — `err(b1) ≥ err(b2) ≥ err(full)`;
//! * **full-budget identity**: decoding with an unbounded budget is
//!   bit-identical to the plain [`Sperr::decompress`] of the untruncated
//!   stream;
//! * **truncation never errors**: even a near-zero budget decodes
//!   cleanly — budget exhaustion is an early exit, not `Corrupt`.
//!
//! On a violation the campaign shrinks the field with the same greedy
//! half-box cropper as the PWE campaign and dumps a replayable
//! reproducer under `target/conformance-failures/`.

use crate::oracle::CheckFailure;
use crate::pwe::{crop, default_failure_dir, random_dims, random_spiky_field};
use rand::{rngs::StdRng, Rng, SeedableRng};
use sperr_compress_api::{Bound, Field, LossyCompressor};
use sperr_core::{Sperr, SperrConfig};
use std::path::PathBuf;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct RefineConfig {
    /// Number of randomized cases.
    pub cases: usize,
    /// Master seed; case `i` derives its own RNG from `seed ^ i`.
    pub seed: u64,
    /// Where to dump shrunk reproducers (`None` = don't dump).
    pub failure_dir: Option<PathBuf>,
}

impl RefineConfig {
    /// The tier-2 configuration, dumping reproducers under `target/`.
    pub fn tier2(cases: usize) -> Self {
        RefineConfig { cases, seed: 0x9ef1_2026, failure_dir: Some(default_failure_dir()) }
    }
}

/// One fully-determined refinement case.
#[derive(Debug, Clone)]
pub struct RefineCase {
    /// Case index (names the reproducer directory on failure).
    pub index: usize,
    /// The synthesized field.
    pub field: Field,
    /// Bitrate the stream is encoded at (BPP mode).
    pub encode_bpp: f64,
    /// First (coarser) preview bitrate, strictly below `preview_hi`.
    pub preview_lo: f64,
    /// Second preview bitrate, strictly below `encode_bpp`.
    pub preview_hi: f64,
}

/// Campaign outcome.
#[derive(Debug)]
pub struct RefineReport {
    /// Cases executed.
    pub cases: usize,
    /// One failure per violating case (after shrinking).
    pub violations: Vec<CheckFailure>,
}

impl RefineReport {
    /// True when every case refined monotonically.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The SPERR instance the campaign drives: conformance chunking (16³, so
/// modest fields still span several chunks), single thread, indexed
/// container.
fn refine_sperr() -> Sperr {
    Sperr::new(SperrConfig { chunk_dims: [16, 16, 16], num_threads: 1, ..SperrConfig::default() })
}

/// Builds case `index` deterministically from the master seed.
pub fn make_case(index: usize, seed: u64) -> RefineCase {
    let mut rng = StdRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let dims = random_dims(&mut rng);
    let field = random_spiky_field(&mut rng, dims);
    // Encode rich enough that truncation has something to cut; previews
    // sit strictly inside (0, encode_bpp).
    let encode_bpp = 4.0 + 8.0 * rng.random::<f64>();
    let preview_lo = 0.2 + 0.3 * encode_bpp * rng.random::<f64>();
    let preview_hi = preview_lo + (encode_bpp - preview_lo) * (0.3 + 0.6 * rng.random::<f64>());
    RefineCase { index, field, encode_bpp, preview_lo, preview_hi }
}

/// Runs the three-budget check on one field. Returns the violation
/// detail, or `None` when the contract holds.
fn violates(field: &Field, encode_bpp: f64, lo: f64, hi: f64) -> Option<String> {
    let sperr = refine_sperr();
    let stream = match sperr.compress(field, Bound::Bpp(encode_bpp)) {
        Ok(s) => s,
        Err(e) => return Some(format!("compress @{encode_bpp:.3}bpp failed: {e}")),
    };
    let full = match sperr.decompress(&stream) {
        Ok(f) => f,
        Err(e) => return Some(format!("decompress failed: {e}")),
    };
    let info = match sperr.inspect(&stream) {
        Ok(i) => i,
        Err(e) => return Some(format!("inspect failed: {e}")),
    };
    // Full-budget identity: an unbounded per-chunk budget must reproduce
    // the strict decode bit-for-bit (BPP mode has no outlier stream, so
    // the preview path and the strict path decode identical bytes).
    let unbounded = vec![usize::MAX; info.n_chunks as usize];
    match sperr.decode_at_budgets(&stream, &unbounded) {
        Ok(f) => {
            let same = f.data.len() == full.data.len()
                && f.data.iter().zip(&full.data).all(|(a, b)| a.to_bits() == b.to_bits());
            if !same {
                return Some("unbounded-budget decode differs from strict decompress".into());
            }
        }
        Err(e) => return Some(format!("unbounded-budget decode failed: {e}")),
    }
    // Truncation never errors: a budget so small every chunk clamps to
    // (nearly) nothing must still decode to a field of the right shape.
    match sperr.decode_at_bpp(&stream, 0.05) {
        Ok(f) => {
            if f.dims != field.dims {
                return Some(format!("near-zero preview has dims {:?}", f.dims));
            }
        }
        Err(e) => return Some(format!("near-zero budget errored instead of truncating: {e}")),
    }
    // Monotone refinement across b1 < b2 < full.
    let err_at = |bpp: f64| -> Result<f64, String> {
        let f = sperr
            .decode_at_bpp(&stream, bpp)
            .map_err(|e| format!("preview @{bpp:.3}bpp failed: {e}"))?;
        Ok(sperr_metrics::max_pwe(&field.data, &f.data))
    };
    let e1 = match err_at(lo) {
        Ok(e) => e,
        Err(d) => return Some(d),
    };
    let e2 = match err_at(hi) {
        Ok(e) => e,
        Err(d) => return Some(d),
    };
    let ef = sperr_metrics::max_pwe(&field.data, &full.data);
    if e2 > e1 {
        return Some(format!(
            "refinement regressed: err@{lo:.3}bpp {e1:e} < err@{hi:.3}bpp {e2:e}"
        ));
    }
    if ef > e2 {
        return Some(format!(
            "full decode worse than preview: err@{hi:.3}bpp {e2:e} < err@full {ef:e}"
        ));
    }
    None
}

/// Shrinks a violating field by repeatedly keeping whichever axis
/// half-box still violates (same greedy scheme as the PWE campaign).
pub fn shrink_violation(case: &RefineCase) -> Field {
    let mut cur = case.field.clone();
    'outer: loop {
        for axis in 0..3 {
            if cur.dims[axis] < 2 {
                continue;
            }
            let half = cur.dims[axis] / 2;
            for (start, len) in [(0, half), (cur.dims[axis] - half, half)] {
                let mut lo = [0; 3];
                lo[axis] = start;
                let mut dims = cur.dims;
                dims[axis] = len;
                let candidate = crop(&cur, lo, dims);
                if violates(&candidate, case.encode_bpp, case.preview_lo, case.preview_hi)
                    .is_some()
                {
                    cur = candidate;
                    continue 'outer;
                }
            }
        }
        return cur;
    }
}

/// Writes the reproducer for a shrunk violation: `input.bin` (raw f64
/// little-endian, x fastest) and `config.txt` (replay parameters).
fn dump_reproducer(
    dir: &std::path::Path,
    case: &RefineCase,
    shrunk: &Field,
    detail: &str,
) -> std::io::Result<PathBuf> {
    let case_dir = dir.join(format!("refine-{:04}", case.index));
    std::fs::create_dir_all(&case_dir)?;
    let mut bytes = Vec::with_capacity(shrunk.data.len() * 8);
    for v in &shrunk.data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    std::fs::write(case_dir.join("input.bin"), &bytes)?;
    let config = format!(
        "case_index {}\nencode_bpp {:e}\nencode_bpp_bits {:016x}\npreview_lo {:e}\n\
         preview_lo_bits {:016x}\npreview_hi {:e}\npreview_hi_bits {:016x}\n\
         dims {} {} {}\nviolation {detail}\n\
         replay: decode input.bin as little-endian f64, x fastest; compress with SPERR \
         (16^3 chunks, 1 thread) at encode_bpp, then decode_at_bpp at preview_lo and \
         preview_hi and assert max error is monotone non-increasing\n",
        case.index,
        case.encode_bpp,
        case.encode_bpp.to_bits(),
        case.preview_lo,
        case.preview_lo.to_bits(),
        case.preview_hi,
        case.preview_hi.to_bits(),
        shrunk.dims[0],
        shrunk.dims[1],
        shrunk.dims[2],
    );
    std::fs::write(case_dir.join("config.txt"), config)?;
    Ok(case_dir)
}

/// Runs one case end-to-end; on violation, shrinks and (if configured)
/// dumps a reproducer.
pub fn run_case(case: &RefineCase, failure_dir: Option<&std::path::Path>) -> Result<(), CheckFailure> {
    let Some(first_detail) = violates(&case.field, case.encode_bpp, case.preview_lo, case.preview_hi)
    else {
        return Ok(());
    };
    let shrunk = shrink_violation(case);
    let detail_at_shrunk =
        violates(&shrunk, case.encode_bpp, case.preview_lo, case.preview_hi)
            .unwrap_or(first_detail);
    let mut detail = format!(
        "case {} dims {:?} (shrunk to {:?}): {detail_at_shrunk}",
        case.index, case.field.dims, shrunk.dims,
    );
    if let Some(dir) = failure_dir {
        match dump_reproducer(dir, case, &shrunk, &detail_at_shrunk) {
            Ok(path) => detail.push_str(&format!("; reproducer at {}", path.display())),
            Err(e) => detail.push_str(&format!("; reproducer dump FAILED: {e}")),
        }
    }
    Err(CheckFailure { check: "refine-campaign", detail })
}

/// Runs the full campaign.
pub fn run_refine_campaign(config: &RefineConfig) -> RefineReport {
    let mut violations = Vec::new();
    for i in 0..config.cases {
        let case = make_case(i, config.seed);
        if let Err(f) = run_case(&case, config.failure_dir.as_deref()) {
            violations.push(f);
        }
    }
    RefineReport { cases: config.cases, violations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_with_ordered_budgets() {
        for i in 0..8 {
            let a = make_case(i, 42);
            let b = make_case(i, 42);
            assert_eq!(a.field.data, b.field.data);
            assert_eq!(a.preview_lo.to_bits(), b.preview_lo.to_bits());
            assert!(0.0 < a.preview_lo && a.preview_lo < a.preview_hi);
            assert!(a.preview_hi < a.encode_bpp);
        }
    }

    #[test]
    fn small_campaign_is_clean() {
        // A handful of cases doubles as the tier-1 smoke for the
        // progressive-decode path; the full sweep runs tier-2.
        let report = run_refine_campaign(&RefineConfig {
            cases: 3,
            seed: 0x9ef1_2026,
            failure_dir: None,
        });
        assert!(report.clean(), "violations: {:?}", report.violations);
    }
}
