//! Property tests for the wavelet substrate: perfect reconstruction and
//! energy behaviour for arbitrary shapes, level counts and kernels.

use proptest::prelude::*;
use sperr_wavelet::{
    coarse_dims, forward_3d, inverse_3d, inverse_3d_partial, levels_for_dims, num_levels, Kernel,
};

fn kernel_strategy() -> impl Strategy<Value = Kernel> {
    prop_oneof![Just(Kernel::Cdf97), Just(Kernel::Cdf53), Just(Kernel::Haar)]
}

fn volume_strategy() -> impl Strategy<Value = (Vec<f64>, [usize; 3])> {
    (1usize..=20, 1usize..=20, 1usize..=12).prop_flat_map(|(nx, ny, nz)| {
        let n = nx * ny * nz;
        prop::collection::vec(-1e4f64..1e4, n..=n).prop_map(move |v| (v, [nx, ny, nz]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn perfect_reconstruction_any_shape((data, dims) in volume_strategy(),
                                        kernel in kernel_strategy(),
                                        extra_levels in 0usize..3) {
        let rule = levels_for_dims(dims);
        // Also exercise levels beyond the rule (driver must handle them).
        let levels = [rule[0] + extra_levels, rule[1] + extra_levels, rule[2] + extra_levels];
        let mut work = data.clone();
        forward_3d(&mut work, dims, levels, kernel);
        inverse_3d(&mut work, dims, levels, kernel);
        let scale = data.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (a, b) in data.iter().zip(&work) {
            prop_assert!((a - b).abs() <= scale * 1e-10,
                         "PR violation: {a} vs {b} (dims {dims:?}, kernel {kernel:?})");
        }
    }

    #[test]
    fn energy_roughly_preserved_cdf97((data, dims) in volume_strategy()) {
        let levels = levels_for_dims(dims);
        let mut work = data.clone();
        forward_3d(&mut work, dims, levels, Kernel::Cdf97);
        let e_in: f64 = data.iter().map(|v| v * v).sum();
        let e_out: f64 = work.iter().map(|v| v * v).sum();
        if e_in > 1e-12 {
            let ratio = e_out / e_in;
            // Biorthogonal, near-orthogonal: bounded drift even on noise.
            prop_assert!((0.5..2.0).contains(&ratio), "energy ratio {ratio}");
        }
    }

    #[test]
    fn partial_inverse_consistent_with_full((data, dims) in volume_strategy()) {
        // skip_finest = 0 must equal the full inverse.
        let levels = levels_for_dims(dims);
        let mut a = data.clone();
        forward_3d(&mut a, dims, levels, Kernel::Cdf97);
        let mut b = a.clone();
        inverse_3d(&mut a, dims, levels, Kernel::Cdf97);
        inverse_3d_partial(&mut b, dims, levels, 0, Kernel::Cdf97);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn coarse_dims_shrink_monotonically(nx in 1usize..200, ny in 1usize..200, nz in 1usize..200) {
        let dims = [nx, ny, nz];
        let levels = levels_for_dims(dims);
        let mut prev = dims;
        for skip in 1..=6usize {
            let c = coarse_dims(dims, levels, skip);
            for d in 0..3 {
                prop_assert!(c[d] <= prev[d]);
                prop_assert!(c[d] >= 1);
            }
            prev = c;
        }
    }

    #[test]
    fn level_rule_monotone(n in 1usize..100000) {
        // num_levels never decreases as n grows, and is capped at 6.
        let l = num_levels(n);
        prop_assert!(l <= 6);
        prop_assert!(num_levels(n + 1) >= l);
    }
}
