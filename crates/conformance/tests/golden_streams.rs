//! Tier-2: the committed golden set must fully conform — every matrix
//! cell present, every stream reproduced byte-for-byte by today's
//! encoder, every committed stream decoding value-for-value to its
//! regen-time digest within the documented error budget.

use sperr_conformance::golden;

#[test]
fn committed_goldens_conform() {
    let failures = golden::check(&golden::golden_dir());
    assert!(
        failures.is_empty(),
        "golden conformance failures:\n{}",
        failures.iter().map(|f| format!("  {f}\n")).collect::<String>()
    );
}

#[test]
fn manifest_matches_generated_set_exactly() {
    // Stronger than `check`'s per-entry comparison: rendering a fresh
    // manifest from an in-memory regen must reproduce the committed
    // manifest text byte-for-byte (so even comment/format drift in the
    // manifest itself is caught).
    let (entries, v1, v3) = golden::generate();
    let f32_entries = golden::generate_f32();
    let v3_index_crc = golden::index_crc(&v3).expect("generated v3 fixture carries an index");
    let want = std::fs::read_to_string(golden::golden_dir().join(golden::MANIFEST_NAME))
        .expect("committed manifest readable");
    let got = golden::render_manifest(&entries, &f32_entries, &v1, &v3, v3_index_crc);
    assert_eq!(
        got, want,
        "freshly generated manifest differs from committed MANIFEST.txt — \
         run `cargo run -p sperr-conformance -- regen` and bump GOLDEN_VERSION \
         if this change is intentional"
    );
}
