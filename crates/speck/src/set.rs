//! Set-partitioning geometry: the cuboid sets SPECK recursively splits.

/// A rectangular set of coefficients: a sub-cuboid of the transformed
/// domain, identified by origin and per-axis length, plus the partition
/// depth it was created at (used to bucket the LIS so smaller sets are
/// processed first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SetS<const D: usize> {
    pub origin: [u32; D],
    pub len: [u32; D],
    pub part_level: u16,
    /// Encoder-side cache: number of significant bitplanes of the set's
    /// max quantized magnitude, i.e. `64 - max.leading_zeros()`. The set
    /// is significant at plane `n` iff `msb_plus1 > n` — an integer
    /// compare instead of a pyramid query per plane. Filled exactly once,
    /// when the set is created (at root init or at split time); the
    /// decoder carries 0 (it learns significance from the stream).
    pub msb_plus1: u8,
}

impl<const D: usize> SetS<D> {
    /// The root set covering the whole domain.
    pub fn root(dims: [usize; D]) -> Self {
        let mut origin = [0u32; D];
        let mut len = [0u32; D];
        for d in 0..D {
            origin[d] = 0;
            len[d] = dims[d] as u32;
        }
        SetS { origin, len, part_level: 0, msb_plus1: 0 }
    }

    /// Number of coefficients in the set.
    #[allow(dead_code)] // used by tests and kept for diagnostics
    pub fn num_points(&self) -> u64 {
        self.len.iter().map(|&l| l as u64).product()
    }

    /// True when the set is a single coefficient.
    pub fn is_pixel(&self) -> bool {
        self.len.iter().all(|&l| l == 1)
    }

    /// Linear (row-major, axis 0 fastest) index of a pixel set.
    pub fn pixel_index(&self, dims: [usize; D]) -> usize {
        debug_assert!(self.is_pixel());
        let mut idx = 0usize;
        let mut stride = 1usize;
        for d in 0..D {
            idx += self.origin[d] as usize * stride;
            stride *= dims[d];
        }
        idx
    }

    /// Splits the set into up to `2^D` children, the *first* part of each
    /// axis taking `len - len/2` samples (so splits align with the dyadic
    /// subband layout where the approximation band holds `ceil(n/2)`
    /// samples). Children are produced in axis-0-fastest order; zero-length
    /// children are skipped. Invokes `f` for each child.
    pub fn split(&self, mut f: impl FnMut(SetS<D>)) {
        // Per axis: (offset, length) of the two parts.
        let mut parts: [[(u32, u32); 2]; D] = [[(0, 0); 2]; D];
        for d in 0..D {
            let second = self.len[d] / 2;
            let first = self.len[d] - second;
            parts[d][0] = (0, first);
            parts[d][1] = (first, second);
        }
        let child_level = self.part_level + 1;
        // Iterate the cartesian product of part choices.
        let combos = 1usize << D;
        'outer: for c in 0..combos {
            let mut origin = self.origin;
            let mut len = [0u32; D];
            for d in 0..D {
                let which = (c >> d) & 1;
                let (off, l) = parts[d][which];
                if l == 0 {
                    continue 'outer;
                }
                origin[d] = self.origin[d] + off;
                len[d] = l;
            }
            f(SetS { origin, len, part_level: child_level, msb_plus1: 0 });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_covers_domain() {
        let s = SetS::root([5usize, 3, 2]);
        assert_eq!(s.num_points(), 30);
        assert!(!s.is_pixel());
    }

    #[test]
    fn split_partitions_exactly() {
        let s = SetS::root([5usize, 3, 2]);
        let mut total = 0u64;
        let mut seen = std::collections::HashSet::new();
        s.split(|c| {
            total += c.num_points();
            // enumerate all covered cells, ensure disjoint
            for z in 0..c.len[2] {
                for y in 0..c.len[1] {
                    for x in 0..c.len[0] {
                        let cell = (c.origin[0] + x, c.origin[1] + y, c.origin[2] + z);
                        assert!(seen.insert(cell), "overlap at {cell:?}");
                    }
                }
            }
            assert_eq!(c.part_level, 1);
        });
        assert_eq!(total, 30);
        assert_eq!(seen.len(), 30);
    }

    #[test]
    fn split_first_part_is_ceil_half() {
        let s = SetS::root([5usize]);
        let mut children = Vec::new();
        s.split(|c| children.push(c));
        assert_eq!(children.len(), 2);
        assert_eq!(children[0].len[0], 3); // ceil(5/2)
        assert_eq!(children[1].len[0], 2);
        assert_eq!(children[1].origin[0], 3);
    }

    #[test]
    fn split_unit_axis_yields_fewer_children() {
        let s = SetS::root([1usize, 4]);
        let mut children = Vec::new();
        s.split(|c| children.push(c));
        // axis 0 cannot split (second part would be empty) -> 2 children
        assert_eq!(children.len(), 2);
    }

    #[test]
    fn pixel_index_row_major() {
        let s = SetS::<3> { origin: [2, 1, 3], len: [1, 1, 1], part_level: 9, msb_plus1: 0 };
        assert!(s.is_pixel());
        assert_eq!(s.pixel_index([4, 5, 6]), 2 + 1 * 4 + 3 * 20);
    }

    #[test]
    fn repeated_split_reaches_pixels() {
        // Splitting until every set is a pixel must enumerate each cell once.
        let dims = [3usize, 7];
        let mut stack = vec![SetS::root(dims)];
        let mut pixels = 0;
        while let Some(s) = stack.pop() {
            if s.is_pixel() {
                pixels += 1;
            } else {
                s.split(|c| stack.push(c));
            }
        }
        assert_eq!(pixels, 21);
    }
}
