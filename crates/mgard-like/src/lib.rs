//! MGARD-like baseline: multigrid-inspired, multilevel piecewise-
//! multilinear compression (Ainsworth, Tugluk, Whitney & Klasky), the
//! fourth comparator of the paper's §VI.
//!
//! Pipeline: a nodal hierarchy of grids with strides `2^L … 1`; the
//! coarsest grid is stored verbatim, every finer point's *multilevel
//! coefficient* is its deviation from multilinear interpolation of the
//! surrounding coarser-grid nodes. Coefficients are quantized uniformly
//! (bin width = tolerance, i.e. per-level error ≤ t/2), Huffman coded and
//! passed through the lossless stage.
//!
//! **Fidelity note (matches the paper's observation).** Like MGARD's
//! practical releases, the quantizer splits no rigorous per-level error
//! budget: per-level quantization errors can stack across the `L+1`
//! levels, so the *hard* guarantee is only `≤ (L+1)·t/2`, while typical
//! errors stay below `t` at loose tolerances and can exceed `t` at tight
//! ones — exactly the behaviour the paper reports ("when t is tight MGARD
//! cannot bound the error tolerance", §VI-C) and the reason Figs. 9/10
//! drop MGARD at idx = 40.

mod sweep;

use sperr_bitstream::{ByteReader, ByteWriter};
use sperr_compress_api::{Bound, CompressError, Field, LossyCompressor, Precision};
use sperr_lossless::huffman;
use std::cell::RefCell;
use sweep::{coarse_grid, max_level_for, multilevel_sweep};

const MAGIC: &[u8; 4] = b"MGRL";
const RADIUS: i64 = 32768;
const ALPHABET: usize = 2 * RADIUS as usize + 2;
const ESCAPE: u32 = (2 * RADIUS + 1) as u32;

/// The MGARD-like baseline compressor.
#[derive(Debug, Clone, Default)]
pub struct MgardLike;

impl MgardLike {
    /// The hard (worst-case) error bound for a given tolerance on a field
    /// of these dimensions: `(L+1) · t / 2` where `L` is the hierarchy
    /// depth. Exposed so the harness can report when the nominal tolerance
    /// is (and isn't) honoured, as the paper does.
    pub fn hard_error_bound(dims: [usize; 3], t: f64) -> f64 {
        (max_level_for(dims) as f64 + 1.0) * t / 2.0
    }
}

impl LossyCompressor for MgardLike {
    fn name(&self) -> &'static str {
        "MGARD-like"
    }

    fn supports(&self, bound: &Bound) -> bool {
        matches!(bound, Bound::Pwe(_))
    }

    fn compress(&self, field: &Field, bound: Bound) -> Result<Vec<u8>, CompressError> {
        let t = match bound {
            Bound::Pwe(t) if t > 0.0 && t.is_finite() => t,
            Bound::Pwe(_) => return Err(CompressError::Invalid("invalid tolerance".into())),
            _ => return Err(CompressError::Unsupported("MGARD-like bounds PWE only")),
        };
        if field.is_empty() {
            return Err(CompressError::Invalid("empty field".into()));
        }
        let dims = field.dims;
        let max_level = max_level_for(dims);
        let bin = t; // see the fidelity note in the crate docs

        let recon = RefCell::new(vec![0.0f64; field.len()]);
        let coarse = coarse_grid(dims, max_level);
        {
            let mut r = recon.borrow_mut();
            for &i in &coarse {
                r[i] = field.data[i];
            }
        }
        let mut symbols: Vec<u32> = Vec::new();
        let mut exact: Vec<f64> = Vec::new();
        {
            let data = &field.data;
            let recon_ref = &recon;
            multilevel_sweep(dims, max_level, &|i| recon_ref.borrow()[i], |i, pred| {
                let err = data[i] - pred;
                let code = (err / bin).round();
                if code.abs() <= RADIUS as f64 && code.is_finite() {
                    let code = code as i64;
                    let rec = pred + code as f64 * bin;
                    if (data[i] - rec).abs() <= bin / 2.0 + bin * 1e-9 {
                        symbols.push((code + RADIUS) as u32);
                        recon_ref.borrow_mut()[i] = rec;
                        return;
                    }
                }
                symbols.push(ESCAPE);
                exact.push(data[i]);
                recon_ref.borrow_mut()[i] = data[i];
            });
        }

        let huff = huffman::encode_symbols(&symbols, ALPHABET);
        let mut w = ByteWriter::new();
        w.put_bytes(MAGIC);
        w.put_u8(match field.precision {
            Precision::Double => 0,
            Precision::Single => 1,
        });
        w.put_f64(t);
        w.put_u32(dims[0] as u32);
        w.put_u32(dims[1] as u32);
        w.put_u32(dims[2] as u32);
        let r = recon.borrow();
        w.put_u32(coarse.len() as u32);
        for &i in &coarse {
            w.put_f64(r[i]);
        }
        w.put_u32(exact.len() as u32);
        for &v in &exact {
            w.put_f64(v);
        }
        w.put_u64(huff.len() as u64);
        w.put_bytes(&huff);
        Ok(sperr_lossless::compress(&w.into_bytes()))
    }

    fn decompress(&self, stream: &[u8]) -> Result<Field, CompressError> {
        let container = sperr_lossless::decompress(stream)?;
        let mut r = ByteReader::new(&container);
        if r.get_bytes(4)? != MAGIC {
            return Err(CompressError::Corrupt("bad MGRL magic".into()));
        }
        let precision = match r.get_u8()? {
            0 => Precision::Double,
            1 => Precision::Single,
            p => return Err(CompressError::Corrupt(format!("bad precision {p}"))),
        };
        let t = r.get_f64()?;
        if !(t > 0.0) || !t.is_finite() {
            return Err(CompressError::Corrupt("bad tolerance".into()));
        }
        let dims = [r.get_u32()? as usize, r.get_u32()? as usize, r.get_u32()? as usize];
        if dims.iter().any(|&d| d == 0) {
            return Err(CompressError::Corrupt("zero dimension".into()));
        }
        // Untrusted header: cap the declared volume before sizing any
        // allocation by it (u32-index domain, like the SPERR container).
        let n = dims
            .iter()
            .try_fold(1u64, |acc, &d| acc.checked_mul(d as u64))
            .filter(|&n| n <= u32::MAX as u64)
            .ok_or_else(|| {
                CompressError::LimitExceeded("declared volume too large".into())
            })? as usize;
        let max_level = max_level_for(dims);
        let bin = t;
        let coarse = coarse_grid(dims, max_level);
        if r.get_u32()? as usize != coarse.len() {
            return Err(CompressError::Corrupt("coarse grid size mismatch".into()));
        }
        let recon = RefCell::new(vec![0.0f64; n]);
        {
            let mut rc = recon.borrow_mut();
            for &i in &coarse {
                rc[i] = r.get_f64()?;
            }
        }
        let n_exact = r.get_u32()? as usize;
        if n_exact > n {
            return Err(CompressError::Corrupt("implausible escape count".into()));
        }
        let mut exact = Vec::with_capacity(n_exact);
        for _ in 0..n_exact {
            exact.push(r.get_f64()?);
        }
        let huff_len = r.get_u64()? as usize;
        let symbols = huffman::decode_symbols(r.get_bytes(huff_len)?)?;
        if symbols.len() != n - coarse.len() {
            return Err(CompressError::Corrupt("symbol count mismatch".into()));
        }

        let sym_pos = RefCell::new(0usize);
        let exact_pos = RefCell::new(0usize);
        let error = RefCell::new(None::<CompressError>);
        {
            let recon_ref = &recon;
            multilevel_sweep(dims, max_level, &|i| recon_ref.borrow()[i], |i, pred| {
                if error.borrow().is_some() {
                    return;
                }
                let mut sp = sym_pos.borrow_mut();
                let sym = symbols[*sp];
                *sp += 1;
                let value = if sym == ESCAPE {
                    let mut ep = exact_pos.borrow_mut();
                    if *ep >= exact.len() {
                        *error.borrow_mut() =
                            Some(CompressError::Corrupt("escape list exhausted".into()));
                        return;
                    }
                    let v = exact[*ep];
                    *ep += 1;
                    v
                } else if (sym as usize) < ALPHABET - 1 {
                    pred + (sym as i64 - RADIUS) as f64 * bin
                } else {
                    *error.borrow_mut() =
                        Some(CompressError::Corrupt("symbol out of range".into()));
                    return;
                };
                recon_ref.borrow_mut()[i] = value;
            });
        }
        if let Some(e) = error.into_inner() {
            return Err(e);
        }
        Ok(Field::new(dims, recon.into_inner()).with_precision(precision))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_field(dims: [usize; 3]) -> Field {
        Field::from_fn(dims, |x, y, z| {
            (x as f64 * 0.15).sin() * 20.0 + (y as f64 * 0.1).cos() * 15.0 + z as f64 * 0.3
        })
    }

    fn max_err(a: &Field, b: &Field) -> f64 {
        a.data
            .iter()
            .zip(&b.data)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn hard_bound_always_holds() {
        let field = smooth_field([25, 19, 13]);
        let m = MgardLike;
        for idx in [5u32, 10, 20, 30] {
            let t = field.tolerance_for_idx(idx);
            let stream = m.compress(&field, Bound::Pwe(t)).unwrap();
            let rec = m.decompress(&stream).unwrap();
            let e = max_err(&field, &rec);
            let hard = MgardLike::hard_error_bound(field.dims, t);
            assert!(e <= hard, "idx={idx}: {e} > hard bound {hard}");
        }
    }

    #[test]
    fn loose_tolerance_typically_honoured() {
        // At loose tolerances, per-level errors rarely stack adversarially;
        // the nominal t should hold on smooth data.
        let field = smooth_field([33, 33, 17]);
        let m = MgardLike;
        let t = field.tolerance_for_idx(8);
        let stream = m.compress(&field, Bound::Pwe(t)).unwrap();
        let rec = m.decompress(&stream).unwrap();
        assert!(max_err(&field, &rec) <= t * 2.0);
    }

    #[test]
    fn smooth_data_compresses() {
        let field = smooth_field([48, 48, 48]);
        let m = MgardLike;
        let t = field.tolerance_for_idx(10);
        let stream = m.compress(&field, Bound::Pwe(t)).unwrap();
        assert!(stream.len() < field.len() * 8 / 10);
    }

    #[test]
    fn tighter_tolerance_costs_more() {
        let field = smooth_field([32, 32, 32]);
        let m = MgardLike;
        let loose = m.compress(&field, Bound::Pwe(field.tolerance_for_idx(6))).unwrap();
        let tight = m.compress(&field, Bound::Pwe(field.tolerance_for_idx(22))).unwrap();
        assert!(tight.len() > loose.len());
    }

    #[test]
    fn degenerate_dims() {
        for dims in [[1usize, 1, 1], [7, 1, 1], [1, 5, 9], [2, 3, 2]] {
            let field = Field::from_fn(dims, |x, y, z| (3 * x + 2 * y + z) as f64 * 0.7);
            let m = MgardLike;
            let t = 0.05;
            let stream = m.compress(&field, Bound::Pwe(t)).unwrap();
            let rec = m.decompress(&stream).unwrap();
            let hard = MgardLike::hard_error_bound(dims, t);
            assert!(max_err(&field, &rec) <= hard, "dims {dims:?}");
        }
    }

    #[test]
    fn unsupported_bounds() {
        let m = MgardLike;
        assert!(!m.supports(&Bound::Bpp(1.0)));
        assert!(!m.supports(&Bound::Psnr(60.0)));
        let field = smooth_field([8, 8, 8]);
        assert!(m.compress(&field, Bound::Psnr(60.0)).is_err());
    }

    #[test]
    fn corrupt_stream_rejected() {
        let field = smooth_field([12, 12, 12]);
        let m = MgardLike;
        let stream = m.compress(&field, Bound::Pwe(0.1)).unwrap();
        assert!(m.decompress(&stream[..stream.len() / 4]).is_err());
        assert!(m.decompress(&[1, 2, 3]).is_err());
    }
}
