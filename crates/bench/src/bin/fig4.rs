//! Fig. 4: outlier coding efficiency — bits per outlier (solid lines in
//! the paper) and outlier percentage (dashed lines) as functions of the
//! quantization step q, for Miranda Viscosity at idx 20/40 and Nyx Dark
//! Matter Density at idx 20/30. Expected shape: cost mostly 6–16 bits per
//! outlier, decreasing as q (and hence outlier density) grows; ~10 bits
//! at the q = 1.5t default (§V-A).

use sperr_datagen::SyntheticField;
use sperr_outlier::encode;

fn main() {
    sperr_bench::banner(
        "Fig. 4 — outlier bitrate and percentage vs q",
        "Figure 4 (Visc-20, Visc-40, Nyx-20, Nyx-30)",
    );
    let cases = [
        (SyntheticField::MirandaViscosity, 20u32),
        (SyntheticField::MirandaViscosity, 40),
        (SyntheticField::NyxDarkMatterDensity, 20),
        (SyntheticField::NyxDarkMatterDensity, 30),
    ];
    println!("case,q_over_t,bits_per_outlier,outlier_pct");
    for (f, idx) in cases {
        let field = sperr_bench::bench_field(f);
        let t = field.tolerance_for_idx(idx);
        let mut q = 1.0f64;
        while q <= 3.001 {
            let outliers = sperr_bench::intercept_outliers(&field, t, q);
            if outliers.is_empty() {
                println!("{},{q:.2},,0.000", f.abbrev(idx));
            } else {
                let enc = encode(&outliers, field.len(), t);
                println!(
                    "{},{q:.2},{:.2},{:.3}",
                    f.abbrev(idx),
                    enc.bits_used as f64 / outliers.len() as f64,
                    100.0 * outliers.len() as f64 / field.len() as f64
                );
            }
            q += 0.25;
        }
    }
}
