//! Table I: translation of a tolerance label `idx` into an absolute PWE
//! tolerance `t = Range / 2^idx`, with the intuitive reading.

use sperr_datagen::SyntheticField;

fn main() {
    sperr_bench::banner("Table I — idx ↔ PWE tolerance translation", "Table I");
    let field = sperr_bench::bench_field(SyntheticField::MirandaPressure);
    let range = field.range();
    println!("# example field: {} (range = {range:.6e})", SyntheticField::MirandaPressure.name());
    println!("idx,tolerance,approx_fraction_of_range,reading");
    for (idx, reading) in [
        (10u32, "one thousandth of the data range"),
        (20, "one millionth of the data range"),
        (30, "one billionth of the data range"),
        (40, "one trillionth of the data range"),
    ] {
        let t = sperr_metrics::tolerance_for_idx(range, idx);
        println!("{idx},{t:.6e},{:.3e},{reading}", t / range);
    }
}
