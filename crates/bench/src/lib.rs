//! Shared plumbing for the per-figure benchmark binaries (one binary per
//! table/figure of the paper — see DESIGN.md §4 for the index).
//!
//! Conventions: every binary prints a short header describing what it
//! reproduces, then CSV rows to stdout so results can be piped into any
//! plotting tool. Volume sizes are scaled-down versions of the paper's
//! (laptop-scale); set `SPERR_BENCH_SCALE=full|half|quarter|tiny` to grow
//! or shrink them.

pub mod json;

use sperr_compress_api::Field;
use sperr_datagen::SyntheticField;
use sperr_outlier::Outlier;
use sperr_speck::Termination;
use sperr_wavelet::{forward_3d, inverse_3d, levels_for_dims, Kernel};

/// Scale factor applied to the standard bench dims, from the
/// `SPERR_BENCH_SCALE` environment variable.
pub fn scale() -> f64 {
    match std::env::var("SPERR_BENCH_SCALE").as_deref() {
        Ok("full") => 2.0,
        Ok("half") => 1.0,
        Ok("quarter") => 0.5,
        Ok("tiny") => 0.25,
        _ => 1.0,
    }
}

/// Laptop-scale dimensions standing in for each field's paper dims
/// (`SyntheticField::paper_dims`), preserving the aspect ratio.
pub fn bench_dims(field: SyntheticField) -> [usize; 3] {
    let s = scale();
    let base: [usize; 3] = match field {
        // paper: 384x384x256 (double-precision Miranda fields)
        SyntheticField::MirandaPressure
        | SyntheticField::MirandaViscosity
        | SyntheticField::MirandaVelocityX => [96, 96, 64],
        // paper: 3072^3 (cutouts of 1024^3 / 2048^3 used)
        SyntheticField::MirandaDensity => [128, 128, 128],
        // paper: 500^3
        SyntheticField::S3dCh4 | SyntheticField::S3dTemperature | SyntheticField::S3dVelocityX => {
            [64, 64, 64]
        }
        // paper: 512^3
        SyntheticField::NyxDarkMatterDensity | SyntheticField::NyxVelocityX => [64, 64, 64],
        // paper: 69^2 x 115 per orbital — kept at native size
        SyntheticField::Qmcpack => return [69, 69, 115],
        SyntheticField::Image2d => return [768, 512, 1],
    };
    base.map(|d| ((d as f64 * s) as usize).max(8))
}

/// Generates a field at its bench dims with the standard seed.
pub fn bench_field(field: SyntheticField) -> Field {
    field.generate(bench_dims(field), 20230512)
}

/// Intercepts SPERR's pipeline right after outlier detection (the paper
/// does exactly this for the Fig. 11 comparison): forward CDF 9/7,
/// quantize at `q = q_factor·t`, inverse, compare. Returns the outliers
/// over the linearized field.
pub fn intercept_outliers(field: &Field, t: f64, q_factor: f64) -> Vec<Outlier> {
    let dims = field.dims;
    let levels = levels_for_dims(dims);
    let mut coeffs = field.data.clone();
    forward_3d(&mut coeffs, dims, levels, Kernel::Cdf97);
    let mut recon = sperr_speck::reconstruct_quantized(&coeffs, q_factor * t);
    inverse_3d(&mut recon, dims, levels, Kernel::Cdf97);
    field
        .data
        .iter()
        .zip(&recon)
        .enumerate()
        .filter_map(|(pos, (&orig, &rec))| {
            let corr = orig - rec;
            (corr.abs() > t).then_some(Outlier { pos, corr })
        })
        .collect()
}

/// SPECK coefficient-coding cost (bits) at `q = q_factor·t`, full quality.
pub fn speck_cost_bits(field: &Field, t: f64, q_factor: f64) -> usize {
    let dims = field.dims;
    let mut coeffs = field.data.clone();
    forward_3d(&mut coeffs, dims, levels_for_dims(dims), Kernel::Cdf97);
    sperr_speck::encode(&coeffs, dims, q_factor * t, Termination::Quality).bits_used
}

/// The Table II experiment matrix: (field, idx) pairs with abbreviations.
pub fn table2_matrix() -> Vec<(SyntheticField, u32)> {
    use SyntheticField::*;
    vec![
        (S3dCh4, 20),
        (S3dCh4, 40),
        (S3dTemperature, 20),
        (S3dTemperature, 40),
        (S3dVelocityX, 20),
        (S3dVelocityX, 40),
        (MirandaPressure, 20),
        (MirandaPressure, 40),
        (MirandaViscosity, 20),
        (MirandaViscosity, 40),
        (MirandaVelocityX, 20),
        (MirandaVelocityX, 40),
        (Qmcpack, 20),
        (NyxDarkMatterDensity, 20),
        (NyxVelocityX, 20),
    ]
}

/// Prints the standard experiment banner.
pub fn banner(what: &str, paper_ref: &str) {
    println!("# SPERR reproduction — {what}");
    println!("# reproduces: {paper_ref}");
    println!("# bench scale: {} (set SPERR_BENCH_SCALE=full|half|quarter|tiny)", scale());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_dims_reasonable() {
        for f in SyntheticField::TABLE2_FIELDS {
            let d = bench_dims(f);
            assert!(d.iter().all(|&x| x >= 8));
            assert!(d.iter().product::<usize>() <= 1 << 26);
        }
    }

    #[test]
    fn intercepted_outliers_all_violate_t() {
        let field = bench_field(SyntheticField::Qmcpack);
        let t = field.tolerance_for_idx(15);
        let outliers = intercept_outliers(&field, t, 1.5);
        assert!(outliers.iter().all(|o| o.corr.abs() > t));
    }

    #[test]
    fn larger_q_more_outliers() {
        let field = SyntheticField::S3dTemperature.generate([32, 32, 32], 1);
        let t = field.tolerance_for_idx(15);
        let few = intercept_outliers(&field, t, 1.0).len();
        let many = intercept_outliers(&field, t, 2.5).len();
        assert!(many >= few);
    }

    #[test]
    fn table2_matrix_matches_paper() {
        let m = table2_matrix();
        assert_eq!(m.len(), 15); // 6 fields x 2 levels + 3 single-level
        assert_eq!(m[0].0.abbrev(m[0].1), "CH4-20");
    }
}
