//! Lifting kernels: CDF 9/7 (the paper's choice), CDF 5/3 and Haar
//! (ablation alternatives).
//!
//! All kernels operate *in place* on an interleaved signal
//! `[s0 d0 s1 d1 ...]` and finish by de-interleaving into the dyadic
//! `[approx... | detail...]` packing (forward) or the reverse (inverse).
//! Boundary handling is whole-sample symmetric extension: index `-i`
//! reflects to `i` and index `n-1+i` to `n-1-i`, matching QccPack.

/// Daubechies–Sweldens lifting constants for CDF 9/7.
const ALPHA: f64 = -1.586_134_342_059_924;
const BETA: f64 = -0.052_980_118_572_961;
const GAMMA: f64 = 0.882_911_075_530_934;
const DELTA: f64 = 0.443_506_852_043_971;
/// Final scaling chosen so the analysis low-pass has DC gain √2, i.e. the
/// synthesis basis functions have approximately unit norm (§III-A).
const ZETA: f64 = std::f64::consts::SQRT_2 / 1.230_174_104_914_001;
const INV_ZETA: f64 = 1.0 / ZETA;

/// Which wavelet filter bank to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Kernel {
    /// Cohen–Daubechies–Feauveau 9/7 — the paper's production choice.
    #[default]
    Cdf97,
    /// CDF 5/3 (LeGall) — shorter filters, cheaper, worse compaction.
    Cdf53,
    /// Haar — trivial two-tap kernel, the compaction floor.
    Haar,
}

impl Kernel {
    /// Human-readable name for harness output.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Cdf97 => "CDF 9/7",
            Kernel::Cdf53 => "CDF 5/3",
            Kernel::Haar => "Haar",
        }
    }

    /// One forward level on `buf[..n]`, leaving `[approx | detail]`.
    /// `scratch` must be at least `n` long.
    pub(crate) fn forward_line(self, buf: &mut [f64], n: usize, scratch: &mut [f64]) {
        debug_assert!(buf.len() >= n && scratch.len() >= n);
        if n < 2 {
            return;
        }
        match self {
            Kernel::Cdf97 => {
                lift_odd(buf, n, ALPHA);
                lift_even(buf, n, BETA);
                lift_odd(buf, n, GAMMA);
                lift_even(buf, n, DELTA);
                scale(buf, n, ZETA, INV_ZETA);
            }
            Kernel::Cdf53 => {
                lift_odd(buf, n, -0.5);
                lift_even(buf, n, 0.25);
                scale(buf, n, std::f64::consts::SQRT_2, std::f64::consts::FRAC_1_SQRT_2);
            }
            Kernel::Haar => {
                // Pairwise orthonormal butterfly; a trailing unpaired sample
                // passes through to the approximation band unchanged.
                let s = std::f64::consts::FRAC_1_SQRT_2;
                let mut i = 0;
                while i + 1 < n {
                    let a = buf[i];
                    let b = buf[i + 1];
                    buf[i] = (a + b) * s;
                    buf[i + 1] = (a - b) * s;
                    i += 2;
                }
            }
        }
        deinterleave(buf, n, scratch);
    }

    /// One inverse level on `buf[..n]`, consuming `[approx | detail]`.
    pub(crate) fn inverse_line(self, buf: &mut [f64], n: usize, scratch: &mut [f64]) {
        debug_assert!(buf.len() >= n && scratch.len() >= n);
        if n < 2 {
            return;
        }
        interleave(buf, n, scratch);
        match self {
            Kernel::Cdf97 => {
                scale(buf, n, INV_ZETA, ZETA);
                lift_even(buf, n, -DELTA);
                lift_odd(buf, n, -GAMMA);
                lift_even(buf, n, -BETA);
                lift_odd(buf, n, -ALPHA);
            }
            Kernel::Cdf53 => {
                scale(buf, n, std::f64::consts::FRAC_1_SQRT_2, std::f64::consts::SQRT_2);
                lift_even(buf, n, -0.25);
                lift_odd(buf, n, 0.5);
            }
            Kernel::Haar => {
                let s = std::f64::consts::FRAC_1_SQRT_2;
                let mut i = 0;
                while i + 1 < n {
                    let lo = buf[i];
                    let hi = buf[i + 1];
                    buf[i] = (lo + hi) * s;
                    buf[i + 1] = (lo - hi) * s;
                    i += 2;
                }
            }
        }
    }
}

/// `x[i] += c * (x[i-1] + x[i+1])` for odd `i`, symmetric extension.
#[inline]
fn lift_odd(x: &mut [f64], n: usize, c: f64) {
    // Interior odd samples always have both neighbours in range except the
    // last sample when n is even.
    let mut i = 1;
    while i + 1 < n {
        x[i] += c * (x[i - 1] + x[i + 1]);
        i += 2;
    }
    if n % 2 == 0 {
        // i == n-1: right neighbour n reflects to n-2.
        x[n - 1] += c * 2.0 * x[n - 2];
    }
}

/// `x[i] += c * (x[i-1] + x[i+1])` for even `i`, symmetric extension.
#[inline]
fn lift_even(x: &mut [f64], n: usize, c: f64) {
    // i == 0: left neighbour -1 reflects to 1.
    x[0] += c * 2.0 * x[1];
    let mut i = 2;
    while i + 1 < n {
        x[i] += c * (x[i - 1] + x[i + 1]);
        i += 2;
    }
    if n % 2 == 1 {
        // i == n-1 (even index): right neighbour reflects to n-2.
        x[n - 1] += c * 2.0 * x[n - 2];
    }
}

/// Scales even samples by `se` and odd samples by `so`.
#[inline]
fn scale(x: &mut [f64], n: usize, se: f64, so: f64) {
    let mut i = 0;
    while i < n {
        x[i] *= se;
        i += 2;
    }
    let mut i = 1;
    while i < n {
        x[i] *= so;
        i += 2;
    }
}

/// `[s0 d0 s1 d1 ...]` -> `[s0 s1 ... | d0 d1 ...]`.
#[inline]
fn deinterleave(x: &mut [f64], n: usize, scratch: &mut [f64]) {
    let half = n.div_ceil(2);
    for i in 0..half {
        scratch[i] = x[2 * i];
    }
    for i in 0..n / 2 {
        scratch[half + i] = x[2 * i + 1];
    }
    x[..n].copy_from_slice(&scratch[..n]);
}

/// `[s... | d...]` -> `[s0 d0 s1 d1 ...]`.
#[inline]
fn interleave(x: &mut [f64], n: usize, scratch: &mut [f64]) {
    let half = n.div_ceil(2);
    for i in 0..half {
        scratch[2 * i] = x[i];
    }
    for i in 0..n / 2 {
        scratch[2 * i + 1] = x[half + i];
    }
    x[..n].copy_from_slice(&scratch[..n]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deinterleave_then_interleave_is_identity() {
        for n in 1..20 {
            let orig: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let mut x = orig.clone();
            let mut scratch = vec![0.0; n];
            deinterleave(&mut x, n, &mut scratch);
            interleave(&mut x, n, &mut scratch);
            assert_eq!(x, orig, "n={n}");
        }
    }

    #[test]
    fn deinterleave_layout() {
        let mut x = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let mut scratch = vec![0.0; 5];
        deinterleave(&mut x, 5, &mut scratch);
        assert_eq!(x, vec![0.0, 2.0, 4.0, 1.0, 3.0]);
    }

    #[test]
    fn two_sample_line_roundtrip() {
        for kernel in [Kernel::Cdf97, Kernel::Cdf53, Kernel::Haar] {
            let mut x = vec![1.0, -2.0];
            let mut scratch = vec![0.0; 2];
            kernel.forward_line(&mut x, 2, &mut scratch);
            kernel.inverse_line(&mut x, 2, &mut scratch);
            assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] + 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn kernel_names() {
        assert_eq!(Kernel::Cdf97.name(), "CDF 9/7");
        assert_eq!(Kernel::default(), Kernel::Cdf97);
    }
}
