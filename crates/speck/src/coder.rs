//! The SPECK encoder/decoder proper: quantization, sorting passes,
//! refinement passes, and mid-riser reconstruction.

use crate::pyramid::MaxPyramid;
use crate::set::SetS;
use sperr_bitstream::BitWriter;

/// When the encoder stops producing bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// Encode every bitplane down to the finest threshold `q` — used for
    /// SPERR's PWE-bounded mode (the outlier coder then fixes what is left).
    Quality,
    /// Stop once this many bits have been produced — SPERR's fixed-size
    /// mode. The resulting prefix is still decodable (embedded stream).
    BitBudget(usize),
}

/// Result of [`encode`].
#[derive(Debug, Clone)]
pub struct EncodedSpeck {
    /// Bit-packed SPECK stream (zero-padded to a whole byte).
    pub stream: Vec<u8>,
    /// Number of bitplanes spanned by the stream; the first plane coded is
    /// `num_planes - 1`. Required for decoding. Zero means "all
    /// coefficients were inside the dead zone".
    pub num_planes: u8,
    /// Exact number of bits produced (before byte padding).
    pub bits_used: usize,
    /// Bits spent on set-significance tests (§IV-B bit type 1).
    pub significance_bits: usize,
    /// Bits spent on coefficient signs (bit type 2).
    pub sign_bits: usize,
    /// Bits spent on refinement (bit type 3).
    pub refinement_bits: usize,
}

/// Quantizes `|c| / q` with floor, saturating at 2^62 so downstream shifts
/// cannot overflow. NaNs quantize to 0 (dead zone).
#[inline]
fn quantize_one(c: f64, inv_q: f64) -> u64 {
    const CAP: f64 = (1u64 << 62) as f64;
    let r = c.abs() * inv_q;
    if r >= CAP {
        1u64 << 62
    } else {
        r as u64 // saturating f64 -> u64 cast; truncation == floor for r >= 0
    }
}

/// The reconstruction the decoder produces from a *complete* (quality-mode)
/// stream, computed directly from the input. The SPERR pipeline uses this
/// to locate outliers without a decode pass; equality with [`decode`] is
/// enforced by tests.
pub fn reconstruct_quantized(coeffs: &[f64], q: f64) -> Vec<f64> {
    let mut out = vec![0.0; coeffs.len()];
    reconstruct_quantized_into(coeffs, q, &mut out);
    out
}

/// Allocation-free variant of [`reconstruct_quantized`]: writes into a
/// caller-provided slice of the same length (hot-path buffer reuse).
pub fn reconstruct_quantized_into(coeffs: &[f64], q: f64, out: &mut [f64]) {
    assert!(q > 0.0 && q.is_finite(), "quantization step must be positive");
    assert_eq!(coeffs.len(), out.len());
    let inv_q = 1.0 / q;
    for (o, &c) in out.iter_mut().zip(coeffs) {
        let k = quantize_one(c, inv_q);
        *o = if k == 0 {
            0.0
        } else {
            let mag = (k as f64 + 0.5) * q;
            if c < 0.0 {
                -mag
            } else {
                mag
            }
        };
    }
}

/// Signals that the bit budget has been exhausted (encoder) or the stream
/// ran out (decoder); unwinds the pass cleanly.
struct Stop;

// ---------------------------------------------------------------- encoder

struct Encoder<'a, const D: usize> {
    dims: [usize; D],
    k: &'a [u64],
    negative: &'a [bool],
    pyramid: &'a MaxPyramid<D>,
    /// Insignificant sets, bucketed by partition level (deeper == smaller;
    /// deeper buckets are processed first, i.e. smallest sets first).
    lis: Vec<Vec<SetS<D>>>,
    lsp: Vec<u32>,
    lsp_new: Vec<u32>,
    out: BitWriter,
    budget: usize,
    significance_bits: usize,
    sign_bits: usize,
    refinement_bits: usize,
}

impl<'a, const D: usize> Encoder<'a, D> {
    #[inline]
    fn emit(&mut self, bit: bool) -> Result<(), Stop> {
        if self.out.len_bits() >= self.budget {
            return Err(Stop);
        }
        self.out.put_bit(bit);
        Ok(())
    }

    fn push_lis(&mut self, set: SetS<D>) {
        let lvl = set.part_level as usize;
        if self.lis.len() <= lvl {
            self.lis.resize_with(lvl + 1, Vec::new);
        }
        self.lis[lvl].push(set);
    }

    fn sorting_pass(&mut self, n: u32) -> Result<(), Stop> {
        // Smallest sets first (paper, Listing 2: "in increasing order of
        // their sizes"): iterate buckets from the deepest partition level.
        for lvl in (0..self.lis.len()).rev() {
            let bucket = std::mem::take(&mut self.lis[lvl]);
            for set in bucket {
                self.process_s(set, n)?;
            }
        }
        Ok(())
    }

    fn process_s(&mut self, set: SetS<D>, n: u32) -> Result<(), Stop> {
        let max = if set.is_pixel() {
            self.k[set.pixel_index(self.dims)]
        } else {
            self.pyramid.region_max(set.origin, set.len)
        };
        let sig = (max >> n) != 0;
        self.emit(sig)?;
        self.significance_bits += 1;
        if sig {
            if set.is_pixel() {
                let idx = set.pixel_index(self.dims);
                self.emit(self.negative[idx])?;
                self.sign_bits += 1;
                self.lsp_new.push(idx as u32);
            } else {
                self.code_s(&set, n)?;
            }
            // Significant sets are consumed (not returned to the LIS).
        } else {
            self.push_lis(set);
        }
        Ok(())
    }

    fn code_s(&mut self, set: &SetS<D>, n: u32) -> Result<(), Stop> {
        let mut children = [*set; 8];
        let mut count = 0usize;
        set.split(|c| {
            children[count] = c;
            count += 1;
        });
        for child in children.iter().take(count) {
            self.process_s(*child, n)?;
        }
        Ok(())
    }

    fn refinement_pass(&mut self, n: u32) -> Result<(), Stop> {
        for i in 0..self.lsp.len() {
            let idx = self.lsp[i] as usize;
            let bit = (self.k[idx] >> n) & 1 == 1;
            self.emit(bit)?;
            self.refinement_bits += 1;
        }
        // Newly significant points join the LSP *after* the refinement pass
        // (their bit `n` is implied by the significance test itself).
        let new = std::mem::take(&mut self.lsp_new);
        self.lsp.extend(new);
        Ok(())
    }
}

/// Encodes `coeffs` (shape `dims`, row-major with axis 0 fastest) with
/// finest quantization step `q > 0`.
pub fn encode<const D: usize>(
    coeffs: &[f64],
    dims: [usize; D],
    q: f64,
    term: Termination,
) -> EncodedSpeck {
    assert!(q > 0.0 && q.is_finite(), "quantization step must be positive");
    let n_total: usize = dims.iter().product();
    assert_eq!(coeffs.len(), n_total, "coeffs/dims mismatch");
    assert!(n_total as u64 <= u32::MAX as u64, "domain too large for u32 indices");

    let inv_q = 1.0 / q;
    let mut k = Vec::with_capacity(n_total);
    let mut negative = Vec::with_capacity(n_total);
    for &c in coeffs {
        k.push(quantize_one(c, inv_q));
        negative.push(c < 0.0);
    }
    let pyramid = MaxPyramid::build(&k, dims);
    let max_k = pyramid.global_max();
    if max_k == 0 {
        return EncodedSpeck {
            stream: Vec::new(),
            num_planes: 0,
            bits_used: 0,
            significance_bits: 0,
            sign_bits: 0,
            refinement_bits: 0,
        };
    }
    let num_planes = (64 - max_k.leading_zeros()) as u8;

    let budget = match term {
        Termination::Quality => usize::MAX,
        Termination::BitBudget(b) => b,
    };
    let mut enc = Encoder {
        dims,
        k: &k,
        negative: &negative,
        pyramid: &pyramid,
        lis: vec![vec![SetS::root(dims)]],
        lsp: Vec::new(),
        lsp_new: Vec::new(),
        out: BitWriter::with_capacity_bits(n_total / 2),
        budget,
        significance_bits: 0,
        sign_bits: 0,
        refinement_bits: 0,
    };

    'planes: for n in (0..num_planes as u32).rev() {
        if enc.sorting_pass(n).is_err() {
            break 'planes;
        }
        if enc.refinement_pass(n).is_err() {
            break 'planes;
        }
    }

    let bits_used = enc.out.len_bits();
    EncodedSpeck {
        significance_bits: enc.significance_bits,
        sign_bits: enc.sign_bits,
        refinement_bits: enc.refinement_bits,
        stream: enc.out.into_bytes(),
        num_planes,
        bits_used,
    }
}
