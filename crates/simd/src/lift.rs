//! Contiguous lifting-step kernels for the wavelet transform.
//!
//! The per-line CDF kernels historically lifted the interleaved signal
//! `[s0 d0 s1 d1 ...]` with stride-2 loops. The blocked layout splits a
//! line into its even/odd halves first, after which every lifting step is
//! a *contiguous* elementwise loop — `d[i] += c * (s[i] + s[i+1])` — that
//! LLVM vectorizes at any baseline feature level. Each output element is
//! an independent expression with the same operand order as the strided
//! original, so the result is bit-identical (see crate docs).
//!
//! Generic over [`Float`]: the `f32` instantiation fits twice the lanes
//! of a vector register per window, halving the memory traffic of every
//! lifting pass.

use crate::float::Float;

/// `dst[i] += c * (a[i] + b[i])` for every lane. All slices must share a
/// length; `a`/`b` are typically the same band offset by one sample.
/// Scalar twin: [`scalar_lift_pairs`].
pub fn lift_pairs<T: Float>(dst: &mut [T], a: &[T], b: &[T], c: T) {
    assert_eq!(dst.len(), a.len());
    assert_eq!(dst.len(), b.len());
    #[cfg(feature = "force-scalar")]
    return scalar_lift_pairs(dst, a, b, c);
    #[cfg(not(feature = "force-scalar"))]
    {
        const W: usize = 8;
        let n = dst.len();
        let blocks = n / W * W;
        let (dv, dt) = dst.split_at_mut(blocks);
        // Equal-length chunked zips: bounds checks hoist, the block body
        // is W independent fused mul-adds.
        for ((db, ab), bb) in dv
            .chunks_exact_mut(W)
            .zip(a[..blocks].chunks_exact(W))
            .zip(b[..blocks].chunks_exact(W))
        {
            for ((d, &x), &y) in db.iter_mut().zip(ab).zip(bb) {
                *d += c * (x + y);
            }
        }
        for ((d, &x), &y) in dt.iter_mut().zip(&a[blocks..]).zip(&b[blocks..]) {
            *d += c * (x + y);
        }
    }
}

/// Scalar reference for [`lift_pairs`].
pub fn scalar_lift_pairs<T: Float>(dst: &mut [T], a: &[T], b: &[T], c: T) {
    assert_eq!(dst.len(), a.len());
    assert_eq!(dst.len(), b.len());
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d += c * (x + y);
    }
}

/// `x[i] *= f` for every lane. Scalar twin: [`scalar_scale_in_place`].
pub fn scale_in_place<T: Float>(x: &mut [T], f: T) {
    #[cfg(feature = "force-scalar")]
    return scalar_scale_in_place(x, f);
    #[cfg(not(feature = "force-scalar"))]
    {
        const W: usize = 8;
        let mut it = x.chunks_exact_mut(W);
        for b in it.by_ref() {
            for v in b {
                *v *= f;
            }
        }
        for v in it.into_remainder() {
            *v *= f;
        }
    }
}

/// Scalar reference for [`scale_in_place`].
pub fn scalar_scale_in_place<T: Float>(x: &mut [T], f: T) {
    for v in x {
        *v *= f;
    }
}

/// De-interleaves `x = [s0 d0 s1 d1 ...]` into `even` (`ceil(n/2)` lanes)
/// and `odd` (`n/2` lanes). Scalar twin: [`scalar_split_even_odd`].
pub fn split_even_odd<T: Float>(x: &[T], even: &mut [T], odd: &mut [T]) {
    let n = x.len();
    assert_eq!(even.len(), n.div_ceil(2));
    assert_eq!(odd.len(), n / 2);
    #[cfg(feature = "force-scalar")]
    return scalar_split_even_odd(x, even, odd);
    #[cfg(not(feature = "force-scalar"))]
    {
        let pairs = n / 2;
        // chunks_exact(2): one interleaved load per pair, split into the
        // two bands with shuffles.
        for ((p, e), o) in x.chunks_exact(2).zip(even.iter_mut()).zip(odd.iter_mut()) {
            *e = p[0];
            *o = p[1];
        }
        if n % 2 == 1 {
            even[pairs] = x[n - 1];
        }
    }
}

/// Scalar reference for [`split_even_odd`].
pub fn scalar_split_even_odd<T: Float>(x: &[T], even: &mut [T], odd: &mut [T]) {
    let n = x.len();
    assert_eq!(even.len(), n.div_ceil(2));
    assert_eq!(odd.len(), n / 2);
    for (i, &v) in x.iter().enumerate() {
        if i % 2 == 0 {
            even[i / 2] = v;
        } else {
            odd[i / 2] = v;
        }
    }
}

/// Re-interleaves the even/odd bands into `x`; inverse of
/// [`split_even_odd`]. Scalar twin: [`scalar_merge_even_odd`].
pub fn merge_even_odd<T: Float>(even: &[T], odd: &[T], x: &mut [T]) {
    let n = x.len();
    assert_eq!(even.len(), n.div_ceil(2));
    assert_eq!(odd.len(), n / 2);
    #[cfg(feature = "force-scalar")]
    return scalar_merge_even_odd(even, odd, x);
    #[cfg(not(feature = "force-scalar"))]
    {
        let pairs = n / 2;
        for ((p, &e), &o) in x.chunks_exact_mut(2).zip(even.iter()).zip(odd.iter()) {
            p[0] = e;
            p[1] = o;
        }
        if n % 2 == 1 {
            x[n - 1] = even[pairs];
        }
    }
}

/// Scalar reference for [`merge_even_odd`].
pub fn scalar_merge_even_odd<T: Float>(even: &[T], odd: &[T], x: &mut [T]) {
    let n = x.len();
    assert_eq!(even.len(), n.div_ceil(2));
    assert_eq!(odd.len(), n / 2);
    for (i, v) in x.iter_mut().enumerate() {
        *v = if i % 2 == 0 { even[i / 2] } else { odd[i / 2] };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_merge_roundtrip() {
        for n in 0..33usize {
            let x: Vec<f64> = (0..n).map(|i| i as f64 * 1.5 - 3.0).collect();
            let mut even = vec![0.0; n.div_ceil(2)];
            let mut odd = vec![0.0; n / 2];
            split_even_odd(&x, &mut even, &mut odd);
            let mut back = vec![0.0; n];
            merge_even_odd(&even, &odd, &mut back);
            assert_eq!(x, back, "n={n}");
        }
    }

    #[test]
    fn split_merge_roundtrip_f32() {
        for n in 0..33usize {
            let x: Vec<f32> = (0..n).map(|i| i as f32 * 1.5 - 3.0).collect();
            let mut even = vec![0.0f32; n.div_ceil(2)];
            let mut odd = vec![0.0f32; n / 2];
            split_even_odd(&x, &mut even, &mut odd);
            let mut back = vec![0.0f32; n];
            merge_even_odd(&even, &odd, &mut back);
            assert_eq!(x, back, "n={n}");
        }
    }

    #[test]
    fn lift_matches_scalar_bitwise() {
        let a: Vec<f64> = (0..23).map(|i| (i as f64).sin() * 7.3).collect();
        let b: Vec<f64> = (0..23).map(|i| (i as f64).cos() * -2.1).collect();
        let mut d1: Vec<f64> = (0..23).map(|i| i as f64 * 0.01).collect();
        let mut d2 = d1.clone();
        lift_pairs(&mut d1, &a, &b, -1.586);
        scalar_lift_pairs(&mut d2, &a, &b, -1.586);
        assert_eq!(
            d1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            d2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        scale_in_place(&mut d1, 1.23);
        scalar_scale_in_place(&mut d2, 1.23);
        assert_eq!(
            d1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            d2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn lift_matches_scalar_bitwise_f32() {
        let a: Vec<f32> = (0..29).map(|i| (i as f32).sin() * 7.3).collect();
        let b: Vec<f32> = (0..29).map(|i| (i as f32).cos() * -2.1).collect();
        let mut d1: Vec<f32> = (0..29).map(|i| i as f32 * 0.01).collect();
        let mut d2 = d1.clone();
        lift_pairs(&mut d1, &a, &b, -1.586f32);
        scalar_lift_pairs(&mut d2, &a, &b, -1.586f32);
        assert_eq!(
            d1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            d2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        scale_in_place(&mut d1, 1.23f32);
        scalar_scale_in_place(&mut d2, 1.23f32);
        assert_eq!(
            d1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            d2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
