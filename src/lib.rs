//! Workspace-level facade for the SPERR reproduction.
//!
//! Re-exports the crates so examples and integration tests can address
//! the whole system through one dependency. The interesting code lives in
//! the member crates:
//!
//! * [`core`] — the SPERR compressor itself,
//! * [`wavelet`], [`speck`],
//!   [`outlier`], [`lossless`],
//!   [`bitstream`] — its substrates,
//! * [`zfp_like`], [`sz_like`],
//!   [`tthresh_like`], [`mgard_like`]
//!   — the comparison baselines,
//! * [`datagen`], [`metrics`],
//!   [`compress_api`] — evaluation support.

pub use sperr_bitstream as bitstream;
pub use sperr_compress_api as compress_api;
pub use sperr_core as core;
pub use sperr_datagen as datagen;
pub use sperr_lossless as lossless;
pub use sperr_metrics as metrics;
pub use sperr_mgard_like as mgard_like;
pub use sperr_outlier as outlier;
pub use sperr_speck as speck;
pub use sperr_sz_like as sz_like;
pub use sperr_tthresh_like as tthresh_like;
pub use sperr_wavelet as wavelet;
pub use sperr_zfp_like as zfp_like;

/// Convenience: every compressor that takes part in the paper's
/// comparisons, behind the shared trait object.
pub fn all_compressors() -> Vec<Box<dyn compress_api::LossyCompressor>> {
    vec![
        Box::new(core::Sperr::new(core::SperrConfig::default())),
        Box::new(sz_like::SzLike::default()),
        Box::new(zfp_like::ZfpLike::default()),
        Box::new(tthresh_like::TthreshLike),
        Box::new(mgard_like::MgardLike),
    ]
}
