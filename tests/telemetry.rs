//! Telemetry-observability guarantees (compiled only with the
//! `telemetry` feature; `scripts/ci.sh` runs this target explicitly):
//!
//! 1. Recording MUST NOT change compressed output — streams are
//!    byte-identical with a telemetry session active vs. inactive, over
//!    the conformance corpus and over random fields (property test).
//! 2. The recording overhead on a 64³ hot-path workload stays under 2%.
//! 3. A traced run produces Chrome trace-event JSON with a span for
//!    every compress-side pipeline stage and one track per pool worker.
#![cfg(feature = "telemetry")]

use proptest::prelude::*;
use sperr_compress_api::{Bound, Field, LossyCompressor};
use sperr_core::{stage_labels, Sperr, SperrConfig};
use std::sync::{Mutex, OnceLock};

/// Telemetry sessions are process-global; every test that starts one
/// holds this lock so parallel test threads cannot interleave sessions.
fn session_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The conformance goldens' compressor configuration.
fn golden_sperr() -> Sperr {
    Sperr::new(SperrConfig {
        chunk_dims: [16, 16, 16],
        num_threads: 1,
        ..SperrConfig::default()
    })
}

fn compress_recorded(sperr: &Sperr, field: &Field, bound: Bound) -> Vec<u8> {
    sperr_telemetry::start();
    let stream = sperr.compress(field, bound).unwrap();
    let report = sperr_telemetry::stop();
    assert!(!report.is_empty(), "session recorded nothing");
    stream
}

#[test]
fn corpus_streams_identical_with_recording_on_and_off() {
    let _guard = session_lock();
    let sperr = golden_sperr();
    for input in sperr_conformance::corpus::corpus_inputs() {
        let field = input.generate();
        for bound in [Bound::Pwe(field.tolerance_for_idx(15)), Bound::Bpp(2.0)] {
            let quiet = sperr.compress(&field, bound).unwrap();
            let recorded = compress_recorded(&sperr, &field, bound);
            assert_eq!(
                quiet, recorded,
                "{}: stream bytes differ when telemetry records ({bound:?})",
                input.id
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_field_streams_identical_with_recording(
        (nx, ny, nz) in (2usize..=12, 2usize..=12, 1usize..=8),
        seed in 0u64..1000,
        idx in 4u32..24,
    ) {
        let _guard = session_lock();
        let n = nx * ny * nz;
        // Cheap deterministic pseudo-random field from the seed.
        let data: Vec<f64> = (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed);
                ((x >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2e4
            })
            .collect();
        let field = Field::new([nx, ny, nz], data);
        let t = field.range() / f64::exp2(idx as f64);
        prop_assume!(t > 0.0);
        let sperr = golden_sperr();
        let quiet = sperr.compress(&field, Bound::Pwe(t)).unwrap();
        let recorded = compress_recorded(&sperr, &field, Bound::Pwe(t));
        prop_assert_eq!(quiet, recorded);
    }
}

#[test]
fn recording_overhead_stays_under_two_percent() {
    let _guard = session_lock();
    let dims = [64usize, 64, 64];
    let field = sperr_datagen::SyntheticField::MirandaDensity.generate(dims, 20230512);
    let t = field.range() * 1e-4;
    let sperr = Sperr::new(SperrConfig {
        chunk_dims: dims,
        lossless: false,
        num_threads: 1,
        ..SperrConfig::default()
    });
    // Warm-up (page in buffers, JIT nothing — just allocator growth).
    sperr.compress(&field, Bound::Pwe(t)).unwrap();
    // Alternate recording-off and recording-on reps and take the best of
    // each, so slow-host noise hits both sides equally.
    let reps = 7;
    let mut best_off = std::time::Duration::MAX;
    let mut best_on = std::time::Duration::MAX;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        sperr.compress(&field, Bound::Pwe(t)).unwrap();
        best_off = best_off.min(t0.elapsed());

        sperr_telemetry::start();
        let t0 = std::time::Instant::now();
        sperr.compress(&field, Bound::Pwe(t)).unwrap();
        best_on = best_on.min(t0.elapsed());
        sperr_telemetry::stop();
    }
    // <2% slowdown, with a small absolute floor so timer granularity on
    // very fast debug-skipping runs cannot produce false failures.
    let limit = best_off.mul_f64(1.02) + std::time::Duration::from_millis(2);
    assert!(
        best_on <= limit,
        "telemetry recording overhead too high: off {:?}, on {:?}",
        best_off,
        best_on
    );
}

#[test]
fn metrics_snapshot_covers_ops_stages_and_memory() {
    let _guard = session_lock();
    let dims = [32usize, 32, 32];
    let field = sperr_datagen::SyntheticField::MirandaDensity.generate(dims, 11);
    let field32 = field.narrow_lossy();
    let t = field.range() * 1e-4;
    let sperr = Sperr::new(SperrConfig {
        chunk_dims: [16, 16, 16],
        num_threads: 2,
        ..SperrConfig::default()
    });
    sperr_telemetry::start();
    let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
    sperr.decompress(&stream).unwrap();
    let stream32 = sperr.compress_f32(&field32, Bound::Pwe(t)).unwrap();
    sperr.decompress_f32(&stream32).unwrap();
    sperr.decode_region(&stream, [0; 3], [8, 8, 8]).unwrap();
    sperr.decode_at_bpp(&stream, 1.0).unwrap();
    sperr_telemetry::stop();

    let snap = sperr_telemetry::MetricsRegistry::global().snapshot();
    // One latency histogram per exercised top-level operation…
    use sperr_core::metric_labels as m;
    for label in [
        m::OP_COMPRESS_F64,
        m::OP_DECOMPRESS_F64,
        m::OP_COMPRESS_F32,
        m::OP_DECOMPRESS_F32,
        m::OP_DECODE_REGION,
        m::OP_DECODE_PREVIEW,
    ] {
        let e = snap.get(label).unwrap_or_else(|| panic!("no metric for {label}"));
        assert!(e.hist.count >= 1, "{label} recorded no samples");
        assert!(e.hist.quantile(0.5) <= e.hist.quantile(0.99), "{label} quantiles inverted");
    }
    // …plus stage latencies (recorded by `timed` under the span labels),
    // size distributions and the arena memory gauges at both widths.
    for label in stage_labels::COMPRESS.iter().chain(stage_labels::DECOMPRESS) {
        assert!(snap.get(label).is_some(), "no stage histogram for {label}");
    }
    for label in [m::SIZE_OUTPUT, m::SIZE_CHUNK_SPECK, m::MEM_ARENA_F64, m::MEM_ARENA_F32] {
        let e = snap.get(label).unwrap_or_else(|| panic!("no metric for {label}"));
        assert!(e.hist.max > 0, "{label} peak is zero");
    }
    assert_eq!(snap.dropped, 0, "shard slots overflowed on a small session");

    // Both exports render: the Prometheus text carries a summary with
    // quantile series per entry, the JSON names the schema.
    let prom = snap.render_prometheus();
    assert!(prom.contains("# TYPE sperr_op_compress_f64_seconds summary"));
    assert!(prom.contains("sperr_op_compress_f64_seconds{quantile=\"0.99\"} "));
    assert!(prom.contains("# TYPE sperr_mem_arena_f64_bytes_max gauge"));
    assert!(snap.render_json().contains("sperr-metrics/v1"));

    // Snapshots are session-scoped: a fresh session resets them, so two
    // CLI runs in one process cannot bleed into each other.
    sperr_telemetry::start();
    sperr_telemetry::stop();
    assert!(
        sperr_telemetry::MetricsRegistry::global().snapshot().is_empty(),
        "metrics survived a session reset"
    );
}

#[test]
fn trace_covers_all_stages_and_worker_tracks() {
    let _guard = session_lock();
    let dims = [32usize, 32, 32];
    let field = sperr_datagen::SyntheticField::MirandaPressure.generate(dims, 7);
    let t = field.range() * 1e-4;
    // 8 chunks across 4 workers: the pool fans out, so the report must
    // carry one named track per worker slot.
    let threads = 4;
    let sperr = Sperr::new(SperrConfig {
        chunk_dims: [16, 16, 16],
        num_threads: threads,
        ..SperrConfig::default()
    });
    sperr_telemetry::start();
    let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
    sperr.decompress(&stream).unwrap();
    let report = sperr_telemetry::stop();

    for label in stage_labels::COMPRESS.iter().chain(stage_labels::DECOMPRESS) {
        assert!(report.has_span(label), "no span recorded for stage {label}");
    }
    let worker_tracks: Vec<usize> =
        report.tracks.iter().filter_map(|track| track.worker).collect();
    for slot in 0..threads {
        assert!(
            worker_tracks.contains(&slot),
            "no timeline track for worker {slot} (have {worker_tracks:?})"
        );
    }

    // The rendered Chrome trace passes the bench harness's schema check,
    // including every stage label of both directions.
    let all_labels: Vec<&str> = stage_labels::COMPRESS
        .iter()
        .chain(stage_labels::DECOMPRESS)
        .copied()
        .collect();
    sperr_bench::json::validate_trace_artifact(&report.chrome_trace(), &all_labels).unwrap();
}
