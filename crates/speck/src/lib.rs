//! SPECK: Set-Partitioned Embedded bloCK coding of wavelet coefficients.
//!
//! This crate implements the improved SPECK variant described in §III of
//! the SPERR paper:
//!
//! * **Arbitrary quantization thresholds** (§III-C): coefficients are
//!   pre-scaled by the reciprocal of the finest quantization step `q` and
//!   coded with integer thresholds `2^n`. The dead zone is `(-q, q)` and
//!   encoded coefficients reconstruct with a mid-riser quantizer
//!   (`(i + ½)·q` for magnitudes in `[iq, (i+1)q)`), for a per-coefficient
//!   quantization error of at most `q/2`.
//! * **Set partitioning** (§III-B): the transformed domain is recursively
//!   split into octants (3D) / quadrants (2D) / halves (1D); each split
//!   puts `len − len/2` samples in the *first* part so set boundaries track
//!   the dyadic subband layout. One bit is emitted per significance test.
//! * **Bitplane-by-bitplane coding**: a sorting pass locates newly
//!   significant coefficients, a refinement pass appends one bit of
//!   precision to previously found ones. The output is *embedded*: any
//!   prefix of the bitstream decodes to a valid (coarser) reconstruction,
//!   which is what enables SPERR's fixed-size compression mode.
//!
//! The implementation is generic over dimensionality `D ∈ {1, 2, 3}`.
//! Significance queries are answered by a max-magnitude pyramid
//! ([`MaxPyramid`]) built once per encode.
//!
//! # Example
//!
//! ```
//! use sperr_speck::{encode, decode, Termination};
//!
//! let dims = [8usize, 8, 8];
//! let coeffs: Vec<f64> = (0..512).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
//! let q = 0.5;
//! let enc = encode(&coeffs, dims, q, Termination::Quality);
//! let rec = decode(&enc.stream, dims, q, enc.num_planes).unwrap();
//! for (c, r) in coeffs.iter().zip(&rec) {
//!     // dead zone + mid-riser: error strictly below q
//!     assert!((c - r).abs() < q);
//! }
//! ```

mod coder;
mod decoder;
mod morton;
mod pyramid;
pub mod reference;
mod set;

pub use coder::{
    encode, reconstruct_quantized, reconstruct_quantized_into, EncodedSpeck, Termination,
};
pub use decoder::{decode, DecodeError, MAX_DECODE_ELEMENTS};
pub use pyramid::MaxPyramid;

/// Version of the SPECK bitstream layout produced by [`encode`]. Bump this
/// whenever an intentional change alters the emitted bits for the same
/// input — the `sperr-conformance` golden-stream manifest records it, so a
/// silent format drift fails conformance while a deliberate one leaves a
/// paper trail (new constant here, regenerated goldens there).
pub const BITSTREAM_FORMAT: u32 = 1;

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<const D: usize>(coeffs: &[f64], dims: [usize; D], q: f64) -> Vec<f64> {
        let enc = encode(coeffs, dims, q, Termination::Quality);
        decode(&enc.stream, dims, q, enc.num_planes).unwrap()
    }

    #[test]
    fn all_zero_input() {
        let dims = [4usize, 4, 4];
        let coeffs = vec![0.0; 64];
        let enc = encode(&coeffs, dims, 1.0, Termination::Quality);
        assert_eq!(enc.num_planes, 0);
        let rec: Vec<f64> = decode(&enc.stream, dims, 1.0, enc.num_planes).unwrap();
        assert_eq!(rec, coeffs);
    }

    #[test]
    fn dead_zone_reconstructs_to_zero() {
        let dims = [8usize];
        // everything strictly inside (-q, q)
        let coeffs = vec![0.4, -0.3, 0.0, 0.9, -0.99, 0.5, 0.1, -0.7];
        let rec = roundtrip(&coeffs, dims, 1.0);
        assert!(rec.iter().all(|&r| r == 0.0));
    }

    #[test]
    fn midriser_reconstruction_levels() {
        let dims = [4usize];
        let q = 1.0;
        let coeffs = vec![1.2, -2.7, 5.0, 0.2];
        let rec = roundtrip(&coeffs, dims, q);
        // [1,2) -> 1.5 ; [2,3) -> -2.5 ; [5,6) -> 5.5 ; dead zone -> 0
        assert_eq!(rec, vec![1.5, -2.5, 5.5, 0.0]);
    }

    #[test]
    fn quality_mode_error_below_q_3d() {
        let dims = [9usize, 7, 5];
        let n = dims.iter().product();
        let coeffs: Vec<f64> = (0..n)
            .map(|i| ((i as f64 * 1.7).sin() * 100.0) + ((i % 13) as f64))
            .collect();
        for q in [0.1, 0.73, 2.5] {
            let rec = roundtrip(&coeffs, dims, q);
            for (c, r) in coeffs.iter().zip(&rec) {
                assert!((c - r).abs() < q, "q={q}, c={c}, r={r}");
            }
        }
    }

    #[test]
    fn quality_mode_error_below_half_q_outside_deadzone() {
        let dims = [16usize, 16];
        let n = 256;
        let coeffs: Vec<f64> =
            (0..n).map(|i| (i as f64 * 0.913).tan().clamp(-50.0, 50.0)).collect();
        let q = 0.25;
        let rec = roundtrip(&coeffs, dims, q);
        for (c, r) in coeffs.iter().zip(&rec) {
            if c.abs() >= q {
                assert!((c - r).abs() <= q / 2.0 + 1e-12, "c={c} r={r}");
            }
        }
    }

    #[test]
    fn single_coefficient_domain() {
        let rec = roundtrip(&[42.0], [1usize], 1.0);
        assert_eq!(rec, vec![42.5]);
    }

    #[test]
    fn single_significant_coefficient_in_volume() {
        let dims = [16usize, 16, 16];
        let mut coeffs = vec![0.0; 4096];
        coeffs[1234] = -77.7;
        let rec = roundtrip(&coeffs, dims, 0.5);
        for (i, (&c, &r)) in coeffs.iter().zip(&rec).enumerate() {
            if i == 1234 {
                assert!((c - r).abs() < 0.5);
            } else {
                assert_eq!(r, 0.0);
            }
        }
    }

    #[test]
    fn embedded_prefix_decodes_coarser() {
        // Truncating the stream must (a) decode without error and (b) give
        // monotonically non-increasing RMSE as the prefix grows.
        let dims = [16usize, 16];
        let coeffs: Vec<f64> = (0..256).map(|i| (i as f64 * 0.31).sin() * 64.0).collect();
        let q = 0.01;
        let enc = encode(&coeffs, dims, q, Termination::Quality);
        let full_len = enc.stream.len();
        let mut last_rmse = f64::INFINITY;
        for frac in [0.1, 0.3, 0.5, 0.8, 1.0] {
            let cut = ((full_len as f64 * frac) as usize).max(1);
            let rec = decode(&enc.stream[..cut], dims, q, enc.num_planes).unwrap();
            let rmse = (coeffs
                .iter()
                .zip(&rec)
                .map(|(c, r)| (c - r) * (c - r))
                .sum::<f64>()
                / 256.0)
                .sqrt();
            assert!(
                rmse <= last_rmse + 1e-9,
                "rmse grew at frac={frac}: {rmse} > {last_rmse}"
            );
            last_rmse = rmse;
        }
        assert!(last_rmse < q, "full decode rmse {last_rmse} >= q {q}");
    }

    #[test]
    fn bit_budget_mode_respects_budget() {
        let dims = [32usize, 32];
        let coeffs: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.11).cos() * 100.0).collect();
        let budget_bits = 2000;
        let enc = encode(&coeffs, dims, 0.001, Termination::BitBudget(budget_bits));
        assert!(enc.bits_used <= budget_bits);
        assert!(enc.stream.len() <= budget_bits.div_ceil(8));
        // Budget-truncated stream still decodes.
        let rec: Vec<f64> = decode(&enc.stream, dims, 0.001, enc.num_planes).unwrap();
        assert_eq!(rec.len(), 1024);
    }

    #[test]
    fn budget_and_quality_agree_when_budget_ample() {
        let dims = [8usize, 8];
        let coeffs: Vec<f64> = (0..64).map(|i| (i as f64) - 31.5).collect();
        let q = 0.5;
        let quality = encode(&coeffs, dims, q, Termination::Quality);
        let budget = encode(&coeffs, dims, q, Termination::BitBudget(usize::MAX / 2));
        assert_eq!(quality.stream, budget.stream);
    }

    #[test]
    fn decode_empty_stream_is_all_zero() {
        let dims = [4usize, 4];
        let rec: Vec<f64> = decode(&[], dims, 1.0, 5).unwrap();
        assert_eq!(rec, vec![0.0; 16]);
    }

    #[test]
    fn decode_garbage_never_panics() {
        let dims = [8usize, 8, 8];
        let garbage: Vec<u8> =
            (0..997u32).map(|i| (i.wrapping_mul(193) >> 3) as u8).collect();
        for planes in [1u8, 7, 33, 63] {
            let rec = decode::<f64, 3>(&garbage, dims, 0.5, planes);
            // Must terminate and produce a full-size result or a clean error.
            if let Ok(v) = rec {
                assert_eq!(v.len(), 512);
            }
        }
    }

    #[test]
    fn nonsquare_dims_roundtrip() {
        for dims in [[5usize, 12, 3], [1, 1, 17], [31, 1, 1], [2, 9, 2]] {
            let n: usize = dims.iter().product();
            let coeffs: Vec<f64> = (0..n).map(|i| ((i * 7 % 23) as f64) - 11.0).collect();
            let q = 0.3;
            let rec = roundtrip(&coeffs, dims, q);
            for (c, r) in coeffs.iter().zip(&rec) {
                assert!((c - r).abs() < q, "dims={dims:?}");
            }
        }
    }

    #[test]
    fn negative_values_keep_sign() {
        let dims = [8usize];
        let coeffs = vec![-3.3, 3.3, -100.0, 100.0, -0.4, 0.4, -7.0, 7.0];
        let rec = roundtrip(&coeffs, dims, 0.5);
        for (c, r) in coeffs.iter().zip(&rec) {
            if c.abs() >= 0.5 {
                assert_eq!(c.signum(), r.signum(), "c={c} r={r}");
            }
        }
    }

    #[test]
    fn bitrate_decreases_with_larger_q() {
        let dims = [16usize, 16, 16];
        let coeffs: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.017).sin() * 50.0).collect();
        let small = encode(&coeffs, dims, 0.01, Termination::Quality);
        let large = encode(&coeffs, dims, 1.0, Termination::Quality);
        assert!(large.bits_used < small.bits_used);
    }

    #[test]
    fn bit_type_accounting_sums_to_total() {
        // §IV-B: every output bit is a significance test, a sign, or a
        // refinement direction — the three counters must cover the stream.
        let dims = [12usize, 10, 8];
        let n: usize = dims.iter().product();
        let coeffs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 30.0).collect();
        let enc = encode(&coeffs, dims, 0.05, Termination::Quality);
        assert_eq!(
            enc.significance_bits + enc.sign_bits + enc.refinement_bits,
            enc.bits_used
        );
        assert!(enc.significance_bits > 0);
        assert!(enc.sign_bits > 0);
        assert!(enc.refinement_bits > 0);
    }

    #[test]
    fn budget_truncates_at_exactly_the_same_bit_as_quality_prefix() {
        // Regression for the run-granular budget check: BitBudget(b) must
        // stop at *exactly* bit b — the stream must be a bit-exact prefix
        // of the quality stream, with bits_used == min(b, full bits), for
        // budgets landing inside zero runs, inside packed refinement
        // words, and on word/accumulator boundaries.
        let dims = [13usize, 9, 5];
        let n: usize = dims.iter().product();
        let coeffs: Vec<f64> = (0..n)
            .map(|i| ((i as f64 * 0.83).sin() * 90.0) * if i % 7 == 0 { 0.0 } else { 1.0 })
            .collect();
        let q = 0.05;
        let full = encode(&coeffs, dims, q, Termination::Quality);
        let bit_of = |stream: &[u8], i: usize| (stream[i / 8] >> (i % 8)) & 1;
        for b in [0usize, 1, 7, 8, 63, 64, 65, 100, 511, 512, 513, 1000, full.bits_used - 1] {
            let cut = encode(&coeffs, dims, q, Termination::BitBudget(b));
            assert_eq!(cut.bits_used, b.min(full.bits_used), "budget {b}");
            assert_eq!(
                cut.significance_bits + cut.sign_bits + cut.refinement_bits,
                cut.bits_used,
                "budget {b}: bit-type accounting"
            );
            for i in 0..cut.bits_used {
                assert_eq!(
                    bit_of(&cut.stream, i),
                    bit_of(&full.stream, i),
                    "budget {b}: bit {i} diverged from quality prefix"
                );
            }
        }
        // A budget beyond the full stream must reproduce it bit for bit.
        let ample = encode(&coeffs, dims, q, Termination::BitBudget(full.bits_used + 999));
        assert_eq!(ample.stream, full.stream);
        assert_eq!(ample.bits_used, full.bits_used);
    }

    #[test]
    fn fast_path_matches_reference_encoder() {
        // The word-granular production encoder vs the kept bit-at-a-time
        // reference: byte-identical streams and identical counters, in
        // both termination modes (see also the conformance oracle and the
        // proptest sweep).
        let dims = [11usize, 6, 7];
        let n: usize = dims.iter().product();
        let coeffs: Vec<f64> =
            (0..n).map(|i| ((i * 31) % 113) as f64 - 56.0 + (i as f64 * 0.01)).collect();
        for term in [Termination::Quality, Termination::BitBudget(777)] {
            let fast = encode(&coeffs, dims, 0.25, term);
            let slow = reference::encode(&coeffs, dims, 0.25, term);
            assert_eq!(fast.stream, slow.stream, "{term:?}");
            assert_eq!(fast.bits_used, slow.bits_used, "{term:?}");
            assert_eq!(fast.num_planes, slow.num_planes, "{term:?}");
            assert_eq!(fast.significance_bits, slow.significance_bits, "{term:?}");
            assert_eq!(fast.sign_bits, slow.sign_bits, "{term:?}");
            assert_eq!(fast.refinement_bits, slow.refinement_bits, "{term:?}");
        }
    }

    #[test]
    fn f32_streams_match_reference_and_roundtrip() {
        // The f32 instantiation honors the same contracts as f64:
        // production vs bit-at-a-time reference streams byte-identical
        // (both general-shape and Morton-cube domains), decode agrees
        // exactly with the encode-side reconstruction, and quality-mode
        // error stays below q for f32-representable magnitudes.
        for dims in [[11usize, 6, 7], [16, 16, 16]] {
            let n: usize = dims.iter().product();
            let coeffs: Vec<f32> =
                (0..n).map(|i| ((i * 29) % 97) as f32 - 48.0 + (i as f32 * 0.011)).collect();
            let q = 0.25;
            for term in [Termination::Quality, Termination::BitBudget(901)] {
                let fast = encode(&coeffs, dims, q, term);
                let slow = reference::encode(&coeffs, dims, q, term);
                assert_eq!(fast.stream, slow.stream, "{dims:?} {term:?}");
                assert_eq!(fast.bits_used, slow.bits_used, "{dims:?} {term:?}");
                assert_eq!(fast.num_planes, slow.num_planes, "{dims:?} {term:?}");
            }
            let enc = encode(&coeffs, dims, q, Termination::Quality);
            let via_decode: Vec<f32> = decode(&enc.stream, dims, q, enc.num_planes).unwrap();
            let via_fast = reconstruct_quantized(&coeffs, q);
            assert_eq!(via_decode, via_fast);
            for (c, r) in coeffs.iter().zip(&via_decode) {
                assert!((c - r).abs() < q as f32, "c={c} r={r}");
            }
        }
    }

    #[test]
    fn f32_and_f64_streams_agree_on_exact_values() {
        // Inputs exactly representable at both widths quantize to the same
        // integers, so the two instantiations must emit identical streams.
        let dims = [8usize, 8, 8];
        let vals64: Vec<f64> = (0..512).map(|i| ((i * 37) % 113) as f64 - 56.0).collect();
        let vals32: Vec<f32> = vals64.iter().map(|&v| v as f32).collect();
        let q = 0.5;
        let e64 = encode(&vals64, dims, q, Termination::Quality);
        let e32 = encode(&vals32, dims, q, Termination::Quality);
        assert_eq!(e64.stream, e32.stream);
        assert_eq!(e64.num_planes, e32.num_planes);
    }

    #[test]
    fn reconstruct_quantized_matches_decode() {
        // The fast path (used by the SPERR pipeline to locate outliers
        // without a decode pass) must agree exactly with a full decode of a
        // quality-mode stream.
        let dims = [7usize, 11, 3];
        let n: usize = dims.iter().product();
        let coeffs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() * 20.0).collect();
        let q = 0.1;
        let enc = encode(&coeffs, dims, q, Termination::Quality);
        let via_decode: Vec<f64> = decode(&enc.stream, dims, q, enc.num_planes).unwrap();
        let via_fast = reconstruct_quantized(&coeffs, q);
        assert_eq!(via_decode, via_fast);
    }
}
