//! Criterion companion to Fig. 10: compression (and decompression) wall
//! time per compressor on one representative field/tolerance, for
//! regression tracking. The `fig10` binary prints the full Table II
//! matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use sperr_compress_api::{Bound, LossyCompressor};
use sperr_core::{Sperr, SperrConfig};
use sperr_datagen::SyntheticField;
use std::hint::black_box;

fn bench_compressors(c: &mut Criterion) {
    let field = SyntheticField::S3dTemperature.generate([48, 48, 48], 5);
    let idx = 20u32;
    let t = field.tolerance_for_idx(idx);
    let psnr = sperr_metrics::psnr_target_for_idx(idx);

    let sperr = Sperr::new(SperrConfig::default());
    let sz = sperr_sz_like::SzLike::default();
    let zfp = sperr_zfp_like::ZfpLike::default();
    let tthresh = sperr_tthresh_like::TthreshLike;
    let mgard = sperr_mgard_like::MgardLike;
    let cases: Vec<(&str, &dyn LossyCompressor, Bound)> = vec![
        ("SPERR", &sperr, Bound::Pwe(t)),
        ("SZ-like", &sz, Bound::Pwe(t)),
        ("ZFP-like", &zfp, Bound::Pwe(t)),
        ("TTHRESH-like", &tthresh, Bound::Psnr(psnr)),
        ("MGARD-like", &mgard, Bound::Pwe(t)),
    ];

    let mut group = c.benchmark_group("compress_temp_idx20");
    group.sample_size(10);
    for (name, comp, bound) in &cases {
        group.bench_function(*name, |b| {
            b.iter(|| black_box(comp.compress(&field, *bound).unwrap().len()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("decompress_temp_idx20");
    group.sample_size(10);
    for (name, comp, bound) in &cases {
        let stream = comp.compress(&field, *bound).unwrap();
        group.bench_function(*name, |b| {
            b.iter(|| black_box(comp.decompress(&stream).unwrap().len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compressors);
criterion_main!(benches);
