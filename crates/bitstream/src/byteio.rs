use crate::{Error, Result};

/// Little-endian byte sink used for container and chunk headers.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its little-endian IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Bytes written so far, without consuming the writer. Lets callers
    /// checksum a header region before appending more data.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian byte cursor used for parsing headers. Failed reads do not
/// consume input.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads exactly `N` bytes into a fixed array without any panicking
    /// conversion (the length is guaranteed by [`Self::take`]).
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        for (dst, src) in a.iter_mut().zip(s) {
            *dst = *src;
        }
        Ok(a)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take_array::<1>()?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian IEEE-754 `f64`.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take_array()?))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Bytes still available.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// True when the cursor has reached the end.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}
