//! Ablation (design choice, §V): the lossless post-pass over the
//! concatenated bitstreams (ZSTD in the paper, our LZ77+Huffman codec
//! here). SPECK output is already entropy-dense, so gains are modest but
//! consistent — chiefly from headers, stream padding and structured
//! significance-bit patterns.

use sperr_compress_api::{Bound, LossyCompressor};
use sperr_core::{Sperr, SperrConfig};

fn main() {
    sperr_bench::banner(
        "Ablation — lossless post-pass on/off",
        "pipeline stage of §V (ZSTD substitute)",
    );
    println!("case,raw_container_bytes,with_lossless_bytes,saving_pct");
    for (f, idx) in sperr_bench::table2_matrix() {
        let field = sperr_bench::bench_field(f);
        let t = field.tolerance_for_idx(idx);
        let plain = Sperr::new(SperrConfig { lossless: false, ..SperrConfig::default() });
        let packed = Sperr::new(SperrConfig { lossless: true, ..SperrConfig::default() });
        let a = plain.compress(&field, Bound::Pwe(t)).expect("compress").len();
        let b = packed.compress(&field, Bound::Pwe(t)).expect("compress").len();
        println!(
            "{},{a},{b},{:.2}",
            f.abbrev(idx),
            100.0 * (a as f64 - b as f64) / a as f64
        );
    }
}
