//! The SPECK encoder proper: quantization, sorting passes, refinement
//! passes, and mid-riser reconstruction — the hot-path (word-granular)
//! implementation. The pre-overhaul bit-at-a-time path lives on in
//! [`crate::reference`] as a differential oracle; both must produce
//! byte-identical streams (see DESIGN.md §10 for the invariants that make
//! this restructuring stream-neutral, and §13 for the vectorized kernels
//! the hot loops lean on).
//!
//! Two encoder bodies share the emission machinery in this module:
//! the general [`Encoder`] below handles any domain shape, and the
//! cache-oriented Morton-layout encoder in [`crate::morton`] takes over
//! for power-of-two cubic domains (where all partitions are aligned
//! dyadic cubes). Both produce identical streams; [`encode`] dispatches.

use crate::pyramid::MaxPyramid;
use crate::set::SetS;
use sperr_bitstream::BitWriter;
use sperr_simd::Float;

/// When the encoder stops producing bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// Encode every bitplane down to the finest threshold `q` — used for
    /// SPERR's PWE-bounded mode (the outlier coder then fixes what is left).
    Quality,
    /// Stop once this many bits have been produced — SPERR's fixed-size
    /// mode. The resulting prefix is still decodable (embedded stream).
    BitBudget(usize),
}

/// Result of [`encode`].
#[derive(Debug, Clone)]
pub struct EncodedSpeck {
    /// Bit-packed SPECK stream (zero-padded to a whole byte).
    pub stream: Vec<u8>,
    /// Number of bitplanes spanned by the stream; the first plane coded is
    /// `num_planes - 1`. Required for decoding. Zero means "all
    /// coefficients were inside the dead zone".
    pub num_planes: u8,
    /// Exact number of bits produced (before byte padding).
    pub bits_used: usize,
    /// Bits spent on set-significance tests (§IV-B bit type 1).
    pub significance_bits: usize,
    /// Bits spent on coefficient signs (bit type 2).
    pub sign_bits: usize,
    /// Bits spent on refinement (bit type 3).
    pub refinement_bits: usize,
    /// Significant sets split into children during encoding. Zero on the
    /// reference path, which does not track structural statistics.
    pub sets_split: usize,
    /// Guaranteed-zero significance runs emitted as bulk writes (the
    /// word-granular fast path; zero on the reference path).
    pub zero_runs: usize,
}

/// Quantizes every coefficient: magnitudes and sign flags. Shared by the
/// production encoder and [`crate::reference`] so the two paths cannot
/// drift in their dead-zone handling; the per-element semantics live in
/// [`sperr_simd::quantize_magnitude`].
pub(crate) fn quantize_all<T: Float>(coeffs: &[T], q: f64) -> (Vec<u64>, Vec<bool>) {
    let inv_q = T::ONE / T::from_f64(q);
    let mut k = Vec::with_capacity(coeffs.len());
    let mut negative = Vec::with_capacity(coeffs.len());
    for &c in coeffs {
        k.push(sperr_simd::quantize_magnitude(c, inv_q));
        negative.push(c < T::ZERO);
    }
    (k, negative)
}

/// Quantizes every coefficient into a packed per-pixel byte
/// `meta = planes_of(k) << 1 | sign`. The sorting passes only ever need
/// a pixel's MSB position and its sign, both read at the same index at
/// discovery time — packing them into one byte cuts the footprint of the
/// hottest random reads 8× versus gathering `u64` magnitudes. Because
/// the MSB occupies the high bits, `meta` values order exactly like
/// their MSBs, so the max pyramid can be built over `meta` directly:
/// `region_max(..) >> 1` is the region's true `planes_of` max.
/// (`planes_of(k) <= 63` since magnitudes saturate at 2^62, so the
/// packed byte cannot overflow.) No magnitude array is materialized at
/// all: the encoder requantizes LSP admissions straight from `coeffs`
/// (see [`Lsp::admit`]), which both removes a full-size `u64` plane from
/// peak memory and turns a scattered 8-byte gather in the discovery hot
/// loop into a dense batched one. Shares
/// [`sperr_simd::quantize_magnitude`] with [`quantize_all`] so the
/// production and reference paths cannot drift in their dead-zone
/// handling.
pub(crate) fn quantize_meta<T: Float>(coeffs: &[T], q: f64) -> Vec<u8> {
    let mut meta = vec![0u8; coeffs.len()];
    sperr_simd::quantize_meta_into(coeffs, T::ONE / T::from_f64(q), &mut meta);
    meta
}

/// The reconstruction the decoder produces from a *complete* (quality-mode)
/// stream, computed directly from the input. The SPERR pipeline uses this
/// to locate outliers without a decode pass; equality with [`decode`] is
/// enforced by tests.
///
/// [`decode`]: crate::decode
pub fn reconstruct_quantized<T: Float>(coeffs: &[T], q: f64) -> Vec<T> {
    let mut out = vec![T::ZERO; coeffs.len()];
    reconstruct_quantized_into(coeffs, q, &mut out);
    out
}

/// Allocation-free variant of [`reconstruct_quantized`]: writes into a
/// caller-provided slice of the same length (hot-path buffer reuse).
pub fn reconstruct_quantized_into<T: Float>(coeffs: &[T], q: f64, out: &mut [T]) {
    assert!(q > 0.0 && q.is_finite(), "quantization step must be positive");
    assert_eq!(coeffs.len(), out.len());
    let qt = T::from_f64(q);
    sperr_simd::reconstruct_mid_riser_into(coeffs, qt, T::ONE / qt, out);
}

/// Signals that the bit budget has been exhausted (encoder) or the stream
/// ran out (decoder); unwinds the pass cleanly.
pub(crate) struct Stop;

// --------------------------------------------------------------- bit sink

/// The encoder's output side: a [`BitWriter`] plus the pending bit batch,
/// the budget discipline, and the per-type bit statistics. Shared by the
/// general [`Encoder`] and the Morton fast path so their emission
/// semantics (and therefore their streams) cannot diverge.
///
/// `CHECKED` selects the budget discipline at monomorphization time:
/// `true` for [`Termination::BitBudget`] (every write is bounds-checked
/// against the budget, at batch granularity for bulk writes), `false`
/// for [`Termination::Quality`] (no budget exists, so the per-bit
/// `len_bits() >= budget` comparison the old path paid on every single
/// bit compiles out entirely; a debug assertion documents the invariant).
///
/// Individual significance/sign bits are not written one at a time: they
/// accumulate in a 64-bit pending word (`pend`) and reach the writer in
/// batches — child-significance runs, signs, and LIS exit bits all
/// coalesce into `put_bits` calls. The batch is flushed before any bulk
/// write (zero runs, refinement words) so bits always land in stream
/// order, and in `CHECKED` mode a flush that would overrun the budget
/// truncates to exactly the remaining room, landing on the same bit the
/// per-bit reference path stops at. `pend_signs` marks which pending
/// positions are sign bits so the statistics split stays exact even
/// across truncation.
pub(crate) struct BitSink<const CHECKED: bool> {
    out: BitWriter,
    budget: usize,
    /// Pending bit batch: LSB-first bits not yet handed to the writer.
    pend: u64,
    pend_signs: u64,
    pend_len: u32,
    pub(crate) significance_bits: usize,
    pub(crate) sign_bits: usize,
    pub(crate) refinement_bits: usize,
    pub(crate) zero_runs: usize,
}

impl<const CHECKED: bool> BitSink<CHECKED> {
    pub(crate) fn new(budget: usize, capacity_bits: usize) -> Self {
        BitSink {
            out: BitWriter::with_capacity_bits(capacity_bits),
            budget,
            pend: 0,
            pend_signs: 0,
            pend_len: 0,
            significance_bits: 0,
            sign_bits: 0,
            refinement_bits: 0,
            zero_runs: 0,
        }
    }

    /// Appends one bit to the pending batch, flushing first if full.
    #[inline]
    pub(crate) fn emit(&mut self, bit: bool, is_sign: bool) -> Result<(), Stop> {
        if self.pend_len == 64 {
            self.flush()?;
        }
        self.pend |= (bit as u64) << self.pend_len;
        self.pend_signs |= (is_sign as u64) << self.pend_len;
        self.pend_len += 1;
        Ok(())
    }

    /// Writes the pending batch to the stream in one `put_bits` call.
    pub(crate) fn flush(&mut self) -> Result<(), Stop> {
        if self.pend_len == 0 {
            return Ok(());
        }
        let nbits = self.pend_len as usize;
        let word = self.pend;
        let signs = self.pend_signs;
        self.pend = 0;
        self.pend_signs = 0;
        self.pend_len = 0;
        if CHECKED {
            let room = self.budget - self.out.len_bits();
            if nbits > room {
                self.out.put_bits(word, room as u32);
                let kept = if room == 0 { 0 } else { !0u64 >> (64 - room) };
                let sc = (signs & kept).count_ones() as usize;
                self.sign_bits += sc;
                self.significance_bits += room - sc;
                return Err(Stop);
            }
        } else {
            debug_assert!(self.out.len_bits() + nbits <= self.budget);
        }
        self.out.put_bits(word, nbits as u32);
        let sc = signs.count_ones() as usize;
        self.sign_bits += sc;
        self.significance_bits += nbits - sc;
        Ok(())
    }

    /// Emits `run` guaranteed-zero significance bits in one bulk write
    /// (after flushing any pending batch, preserving stream order). In
    /// `CHECKED` mode the budget is enforced at run granularity: the run
    /// is truncated to the remaining budget and the encoder stops at
    /// exactly the bit the per-bit reference path would have stopped at.
    #[inline]
    pub(crate) fn emit_zero_run(&mut self, run: usize) -> Result<(), Stop> {
        if run == 0 {
            return Ok(());
        }
        self.flush()?;
        self.zero_runs += 1;
        if CHECKED {
            let room = self.budget - self.out.len_bits();
            if run > room {
                self.out.put_zeros(room);
                self.significance_bits += room;
                return Err(Stop);
            }
        }
        self.out.put_zeros(run);
        self.significance_bits += run;
        Ok(())
    }

    /// One refinement word write. In `CHECKED` mode a word that would
    /// overrun the budget is truncated to the remaining bits, so
    /// termination lands on exactly the same bit as the per-bit path.
    #[inline]
    fn put_refine_word(&mut self, word: u64, w: usize) -> Result<(), Stop> {
        debug_assert_eq!(self.pend_len, 0, "sorting pass leaves the batch empty");
        if CHECKED {
            let room = self.budget - self.out.len_bits();
            if w > room {
                self.out.put_bits(word, room as u32);
                self.refinement_bits += room;
                return Err(Stop);
            }
        }
        self.out.put_bits(word, w as u32);
        self.refinement_bits += w;
        Ok(())
    }

    pub(crate) fn len_bits(&self) -> usize {
        self.out.len_bits()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.out.into_bytes()
    }
}

// -------------------------------------------------------------------- LSP

/// The list of significant pixels: magnitudes of previously significant
/// coefficients, in discovery order. The refinement pass only ever needs
/// bit `n` of each magnitude, so the values are stored contiguously here
/// and every refinement pass is a sequential scan — storing indices would
/// turn the hottest loop in the encoder into a per-plane random gather
/// over the full domain. When every magnitude fits in 32 bits
/// (`num_planes <= 32`, the overwhelmingly common case) the LSP narrows
/// to `k32`, halving the traffic of the pass that dominates bit volume;
/// `k64` serves the rest. Exactly one of the two is ever non-empty.
///
/// `new_idx` holds the current plane's discoveries as pixel *indices*
/// (row-major), staged until the refinement pass (their bit `n` is
/// implied by the significance test itself). The magnitudes are
/// requantized from the coefficient array in one dense batch when the
/// plane's discoveries join the LSP ([`Lsp::admit`]): the discovery hot
/// loop then only appends a 4-byte index (sequential write), and the
/// unavoidable random reads of `coeffs` happen in a tight pure-gather
/// loop where the out-of-order window keeps many cache misses in flight,
/// instead of one serialized miss inside the branchy sorting pass per
/// discovered pixel.
pub(crate) struct Lsp {
    narrow: bool,
    k32: Vec<u32>,
    k64: Vec<u64>,
    pub(crate) new_idx: Vec<u32>,
}

impl Lsp {
    pub(crate) fn new(num_planes: u8) -> Self {
        Lsp { narrow: num_planes <= 32, k32: Vec::new(), k64: Vec::new(), new_idx: Vec::new() }
    }

    /// One refinement pass at plane `n`: bit `n` of every previously
    /// significant coefficient, gathered 64 at a time into a word
    /// ([`sperr_simd::plane_word_u64`] / [`plane_word_u32`][u32]) and
    /// emitted with a single bulk write.
    ///
    /// [u32]: sperr_simd::plane_word_u32
    pub(crate) fn refine<const CHECKED: bool>(
        &self,
        sink: &mut BitSink<CHECKED>,
        n: u32,
    ) -> Result<(), Stop> {
        if self.narrow {
            let len = self.k32.len();
            let mut i = 0usize;
            while i < len {
                let w = (len - i).min(64);
                let word = sperr_simd::plane_word_u32(&self.k32[i..i + w], n);
                sink.put_refine_word(word, w)?;
                i += w;
            }
        } else {
            let len = self.k64.len();
            let mut i = 0usize;
            while i < len {
                let w = (len - i).min(64);
                let word = sperr_simd::plane_word_u64(&self.k64[i..i + w], n);
                sink.put_refine_word(word, w)?;
                i += w;
            }
        }
        Ok(())
    }

    /// Admits the current plane's discoveries into the LSP (called after
    /// the plane's refinement pass): one dense requantizing gather over
    /// the staged indices.
    pub(crate) fn admit<T: Float>(&mut self, coeffs: &[T], inv_q: T) {
        if self.narrow {
            self.k32.extend(
                self.new_idx
                    .iter()
                    .map(|&i| sperr_simd::quantize_magnitude(coeffs[i as usize], inv_q) as u32),
            );
        } else {
            self.k64.extend(
                self.new_idx
                    .iter()
                    .map(|&i| sperr_simd::quantize_magnitude(coeffs[i as usize], inv_q)),
            );
        }
        self.new_idx.clear();
    }
}

// ----------------------------------------------- encoder (general shapes)

/// One LIS bucket (all insignificant sets at one partition level), stored
/// as parallel arrays: the set geometry and its cached `msb_plus1` side
/// by side. The sorting pass only reads `msb` until a set turns
/// significant, so splitting the 1-byte significance key out of the
/// 20-odd-byte `SetS` lets the insignificance scan run over a dense byte
/// array — one cache line answers 64 sets, and the SWAR run scan
/// ([`sperr_simd::run_le`]) tests 8 per step instead of branching on each.
struct LisBucket<const D: usize> {
    sets: Vec<SetS<D>>,
    msb: Vec<u8>,
}

impl<const D: usize> LisBucket<D> {
    fn new() -> Self {
        LisBucket { sets: Vec::new(), msb: Vec::new() }
    }
}

/// The word-granular encoder for arbitrary domain shapes. Power-of-two
/// cubic domains take the Morton fast path in [`crate::morton`] instead;
/// the two produce identical streams.
struct Encoder<'a, T: Float, const D: usize, const CHECKED: bool> {
    dims: [usize; D],
    coeffs: &'a [T],
    inv_q: T,
    /// Per-coefficient `planes_of(k) << 1 | sign` (see [`quantize_meta`]).
    /// Significance only ever compares MSB positions, so the sorting
    /// passes run entirely on this `u8` array (and the `u8` pyramid
    /// below); the full magnitudes are only computed once per
    /// coefficient, at LSP admission.
    meta: &'a [u8],
    pyramid: &'a MaxPyramid<'a, u8, D>,
    /// Insignificant sets, bucketed by partition level (deeper == smaller;
    /// deeper buckets are processed first, i.e. smallest sets first).
    lis: Vec<LisBucket<D>>,
    lsp: Lsp,
    sink: BitSink<CHECKED>,
    sets_split: usize,
}

impl<'a, T: Float, const D: usize, const CHECKED: bool> Encoder<'a, T, D, CHECKED> {
    fn push_lis(&mut self, set: SetS<D>) {
        let lvl = set.part_level as usize;
        if self.lis.len() <= lvl {
            self.lis.resize_with(lvl + 1, LisBucket::new);
        }
        self.lis[lvl].sets.push(set);
        self.lis[lvl].msb.push(set.msb_plus1);
    }

    /// One sorting pass at plane `n`. Smallest sets first (paper, Listing
    /// 2: "in increasing order of their sizes"): iterate buckets from the
    /// deepest partition level.
    ///
    /// Each bucket is compacted in place — surviving (still-insignificant)
    /// sets slide to the front with bulk `copy_within` instead of being
    /// drained into a fresh vector, so bucket storage is allocated once
    /// and reused across planes. Thanks to the parallel `msb` byte array,
    /// a maximal run of insignificant sets is located by one SWAR scan
    /// ([`sperr_simd::run_le`]: a set is insignificant at plane `n`
    /// exactly when `msb_plus1 <= n`; both sides are < 128 so the
    /// movemask trick applies), retained with two `copy_within`s, and
    /// emitted as one zero run; only significant sets take the (rare)
    /// slow path. New sets created by splits always land in *deeper*
    /// buckets, which this pass already finished, so in-place mutation
    /// never aliases the iteration.
    fn sorting_pass(&mut self, n: u32) -> Result<(), Stop> {
        debug_assert!(n < 64);
        let t = n as u8;
        for lvl in (0..self.lis.len()).rev() {
            let len = self.lis[lvl].sets.len();
            let mut read = 0usize;
            let mut write = 0usize;
            while read < len {
                let run = sperr_simd::run_le(&self.lis[lvl].msb[read..len], t);
                if run > 0 {
                    if write != read {
                        let b = &mut self.lis[lvl];
                        b.sets.copy_within(read..read + run, write);
                        b.msb.copy_within(read..read + run, write);
                    }
                    write += run;
                    read += run;
                    self.sink.emit_zero_run(run)?;
                }
                if read < len {
                    // First significant set after the run.
                    let set = self.lis[lvl].sets[read];
                    read += 1;
                    self.sink.emit(true, false)?;
                    if set.is_pixel() {
                        let idx = set.pixel_index(self.dims);
                        self.sink.emit(self.meta[idx] & 1 == 1, true)?;
                        self.lsp.new_idx.push(idx as u32);
                    } else {
                        self.code_s(&set, n)?;
                    }
                    // Significant sets are consumed (not kept in the LIS).
                }
            }
            let b = &mut self.lis[lvl];
            b.sets.truncate(write);
            b.msb.truncate(write);
        }
        self.sink.flush()
    }

    /// Splits a significant set and processes its children immediately
    /// (per the paper). Each child's significance cache is computed here,
    /// exactly once in its lifetime: pixels read the `meta` array
    /// directly, cuboids pay one (u8) pyramid query — after which every
    /// future significance test on the child (one per plane while it
    /// waits in the LIS) is a byte compare in the bucket scan. Child
    /// significance and sign bits accumulate in the pending batch;
    /// recursion appends to the same batch, so an entire split subtree
    /// typically reaches the writer as a handful of word writes.
    fn code_s(&mut self, set: &SetS<D>, n: u32) -> Result<(), Stop> {
        self.sets_split += 1;
        let mut children = [*set; 8];
        let mut count = 0usize;
        set.split(|c| {
            children[count] = c;
            count += 1;
        });
        for child in children.iter_mut().take(count) {
            if child.is_pixel() {
                let idx = child.pixel_index(self.dims);
                let m = self.meta[idx]; // one random read: MSB and sign together
                let sig = (m >> 1) as u32 > n;
                self.sink.emit(sig, false)?;
                if sig {
                    self.sink.emit(m & 1 == 1, true)?;
                    self.lsp.new_idx.push(idx as u32);
                } else {
                    child.msb_plus1 = m >> 1;
                    self.push_lis(*child);
                }
            } else {
                let msb = self.pyramid.region_max(child.origin, child.len) >> 1;
                let sig = (msb as u32) > n;
                self.sink.emit(sig, false)?;
                if sig {
                    self.code_s(child, n)?;
                } else {
                    child.msb_plus1 = msb;
                    self.push_lis(*child);
                }
            }
        }
        Ok(())
    }

    fn run(&mut self, num_planes: u8) {
        for n in (0..num_planes as u32).rev() {
            let _plane = sperr_telemetry::span!("speck.encode.plane", n);
            if self.sorting_pass(n).is_err() {
                break;
            }
            if self.lsp.refine(&mut self.sink, n).is_err() {
                break;
            }
            self.lsp.admit(self.coeffs, self.inv_q);
        }
    }
}

fn encode_with<T: Float, const D: usize, const CHECKED: bool>(
    dims: [usize; D],
    coeffs: &[T],
    inv_q: T,
    meta: &[u8],
    pyramid: &MaxPyramid<'_, u8, D>,
    num_planes: u8,
    budget: usize,
    n_total: usize,
) -> EncodedSpeck {
    let mut root = SetS::root(dims);
    root.msb_plus1 = num_planes;
    let mut enc = Encoder::<'_, T, D, CHECKED> {
        dims,
        coeffs,
        inv_q,
        meta,
        pyramid,
        lis: vec![LisBucket { sets: vec![root], msb: vec![num_planes] }],
        lsp: Lsp::new(num_planes),
        sink: BitSink::new(budget, n_total / 2),
        sets_split: 0,
    };
    enc.run(num_planes);
    finish(enc.sink, enc.sets_split, num_planes)
}

/// Packages a finished sink into the [`EncodedSpeck`] result.
pub(crate) fn finish<const CHECKED: bool>(
    sink: BitSink<CHECKED>,
    sets_split: usize,
    num_planes: u8,
) -> EncodedSpeck {
    let bits_used = sink.len_bits();
    EncodedSpeck {
        significance_bits: sink.significance_bits,
        sign_bits: sink.sign_bits,
        refinement_bits: sink.refinement_bits,
        sets_split,
        zero_runs: sink.zero_runs,
        stream: sink.into_bytes(),
        num_planes,
        bits_used,
    }
}

/// An all-dead-zone result (no planes, empty stream).
pub(crate) fn empty_result() -> EncodedSpeck {
    EncodedSpeck {
        stream: Vec::new(),
        num_planes: 0,
        bits_used: 0,
        significance_bits: 0,
        sign_bits: 0,
        refinement_bits: 0,
        sets_split: 0,
        zero_runs: 0,
    }
}

/// Encodes `coeffs` (shape `dims`, row-major with axis 0 fastest) with
/// finest quantization step `q > 0`.
pub fn encode<T: Float, const D: usize>(
    coeffs: &[T],
    dims: [usize; D],
    q: f64,
    term: Termination,
) -> EncodedSpeck {
    assert!(q > 0.0 && q.is_finite(), "quantization step must be positive");
    let n_total: usize = dims.iter().product();
    assert_eq!(coeffs.len(), n_total, "coeffs/dims mismatch");
    assert!(n_total as u64 <= u32::MAX as u64, "domain too large for u32 indices");

    let meta = quantize_meta(coeffs, q);
    let inv_q = T::ONE / T::from_f64(q);

    // Power-of-two cubes (the dominant case in practice) take the
    // Morton-layout fast path: every partition the coder creates is an
    // aligned dyadic cube there, so the Z-order layout makes each split's
    // child block one contiguous load. Identical streams by construction;
    // enforced by the conformance goldens and the reference oracle.
    if crate::morton::applicable(dims) {
        let r = match term {
            Termination::Quality => {
                crate::morton::encode_morton::<T, D, false>(coeffs, dims, inv_q, meta, usize::MAX)
            }
            Termination::BitBudget(b) => {
                crate::morton::encode_morton::<T, D, true>(coeffs, dims, inv_q, meta, b)
            }
        };
        return r;
    }

    let pyramid = MaxPyramid::build(&meta, dims);
    let num_planes = pyramid.global_max() >> 1;
    if num_planes == 0 {
        return empty_result();
    }

    match term {
        Termination::Quality => encode_with::<T, D, false>(
            dims, coeffs, inv_q, &meta, &pyramid, num_planes, usize::MAX, n_total,
        ),
        Termination::BitBudget(b) => {
            encode_with::<T, D, true>(dims, coeffs, inv_q, &meta, &pyramid, num_planes, b, n_total)
        }
    }
}
