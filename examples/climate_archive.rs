//! Community-archive scenario (paper §I): a data set written once and read
//! by many — think CESM LENS or the JHU turbulence database — where the
//! achieved compression rate trumps compression speed.
//!
//! Compresses a suite of synthetic SDRBench-like fields at archive-grade
//! tolerances, verifies every field's PWE guarantee, and prints the
//! storage ledger. Also shows the compressor choice the paper motivates:
//! SPERR vs. the fastest baseline (SZ-like) at equal tolerance.
//!
//! Run with: `cargo run --release --example climate_archive`

use sperr_compress_api::{Bound, LossyCompressor};
use sperr_core::{Sperr, SperrConfig};
use sperr_datagen::SyntheticField;
use sperr_sz_like::SzLike;

fn main() {
    let dims = [48, 48, 48];
    let idx = 20; // one millionth of each field's range (Table I)
    let sperr = Sperr::new(SperrConfig::default());
    let sz = SzLike::default();

    println!("archive tolerance: idx = {idx} (t = range / 2^{idx})");
    println!(
        "{:<26} {:>10} {:>10} {:>9} {:>9} {:>8}",
        "field", "SPERR B", "SZ-like B", "SPERR x", "SZ x", "maxerr/t"
    );

    let mut total_raw = 0usize;
    let mut total_sperr = 0usize;
    let mut total_sz = 0usize;
    for f in SyntheticField::TABLE2_FIELDS {
        let field = f.generate(dims, 7);
        let t = field.tolerance_for_idx(idx);
        let raw = field.len() * 8;

        let stream = sperr.compress(&field, Bound::Pwe(t)).expect("sperr");
        let restored = sperr.decompress(&stream).expect("sperr decode");
        let err = sperr_metrics::max_pwe(&field.data, &restored.data);
        assert!(err <= t, "{}: PWE violated", f.name());

        let sz_stream = sz.compress(&field, Bound::Pwe(t)).expect("sz");
        let sz_restored = sz.decompress(&sz_stream).expect("sz decode");
        let sz_err = sperr_metrics::max_pwe(&field.data, &sz_restored.data);
        assert!(sz_err <= t, "{}: SZ-like PWE violated", f.name());

        println!(
            "{:<26} {:>10} {:>10} {:>8.1}x {:>8.1}x {:>8.3}",
            f.name(),
            stream.len(),
            sz_stream.len(),
            raw as f64 / stream.len() as f64,
            raw as f64 / sz_stream.len() as f64,
            err / t
        );
        total_raw += raw;
        total_sperr += stream.len();
        total_sz += sz_stream.len();
    }

    println!(
        "\narchive total: {:.2} MiB raw -> {:.2} MiB SPERR ({:.1}x), {:.2} MiB SZ-like ({:.1}x)",
        total_raw as f64 / (1 << 20) as f64,
        total_sperr as f64 / (1 << 20) as f64,
        total_raw as f64 / total_sperr as f64,
        total_sz as f64 / (1 << 20) as f64,
        total_raw as f64 / total_sz as f64,
    );
    println!("every field satisfied its point-wise error tolerance.");
}
