//! The top-level SPERR compressor: chunking, the embarrassingly parallel
//! driver (§III-D), container assembly and the lossless post-pass (§V).

use crate::chunk::{chunk_grid, extract_chunk_into, insert_chunk, ChunkSpec};
use crate::container::{
    read_container, write_container, ChunkEntry, ChunkIndexEntry, Header, Mode, VERSION,
    VERSION_V2,
};
use crate::crc32::crc32;
use crate::pipeline::{
    compress_chunk_bpp_with, compress_chunk_pwe_with, compress_chunk_rmse_with, decompress_chunk,
    decompress_chunk_multires, decompress_chunk_region_with, decompress_chunk_with, ChunkEncoding,
    ScratchArena,
};
use crate::pool::{PerWorker, WorkerPool};
use crate::stats::{metric_labels, stage_labels, CompressionStats, StageTimes};
use sperr_compress_api::{Bound, CompressError, Field, FieldOf, LossyCompressor, Precision};
use sperr_simd::Float;
use sperr_telemetry::timed;
use sperr_wavelet::{Kernel, PANEL_W};

/// Outer stream framing: one flag byte telling whether the container is
/// wrapped by the lossless codec.
pub(crate) const OUTER_RAW: u8 = 0;
pub(crate) const OUTER_LOSSLESS: u8 = 1;

/// Amortized per-chunk container overhead charged against the bit budget
/// in size-bounded mode (chunk-table entry + share of the header).
pub(crate) const PER_CHUNK_HEADER_BITS: usize = 26 * 8;

/// Configuration for [`Sperr`].
#[derive(Debug, Clone)]
pub struct SperrConfig {
    /// Chunk extent; the volume is partitioned into chunks of at most this
    /// size. The paper's default is 256³ (§V-B); it need not divide the
    /// volume dimensions.
    pub chunk_dims: [usize; 3],
    /// SPECK quantization step as a multiple of the PWE tolerance:
    /// `q = q_factor · t`. The paper settles on 1.5 (§IV-D).
    pub q_factor: f64,
    /// Wavelet kernel (CDF 9/7 in the paper; others for ablations).
    pub kernel: Kernel,
    /// Apply the lossless post-pass to the final container (§V; on by
    /// default, standing in for ZSTD).
    pub lossless: bool,
    /// Worker threads for chunk-parallel execution; 0 = one per available
    /// core.
    pub num_threads: usize,
    /// Bound on the number of raw chunk buffers the streaming pipeline
    /// ([`Sperr::compress_stream`] / [`Sperr::decompress_stream`]) keeps
    /// in flight at once; back-pressure blocks the ingest/emit side when
    /// the budget is exhausted. 0 = auto (2 × worker threads). The
    /// effective budget is never below the number of chunks in one
    /// z-layer of the chunk grid — a row-major stream cannot complete any
    /// chunk of a layer without buffering the whole layer.
    pub in_flight_chunks: usize,
    /// Container format version to write: 3 (default; carries the chunk
    /// index that makes [`Sperr::decode_region`] seek instead of scan) or
    /// 2 (checksummed but index-free — the layout the conformance goldens
    /// pin). The reader accepts 1–3 regardless of this setting.
    pub container_version: u8,
}

impl Default for SperrConfig {
    fn default() -> Self {
        SperrConfig {
            chunk_dims: [256, 256, 256],
            q_factor: 1.5,
            kernel: Kernel::Cdf97,
            lossless: true,
            num_threads: 0,
            in_flight_chunks: 0,
            container_version: VERSION,
        }
    }
}

/// The SPERR compressor. See the crate docs for the pipeline description.
#[derive(Debug, Clone, Default)]
pub struct Sperr {
    config: SperrConfig,
}

impl Sperr {
    /// Creates a compressor with the given configuration.
    pub fn new(config: SperrConfig) -> Self {
        assert!(config.q_factor > 0.0, "q_factor must be positive");
        assert!(config.chunk_dims.iter().all(|&d| d > 0), "chunk dims must be positive");
        assert!(
            (VERSION_V2..=VERSION).contains(&config.container_version),
            "writable container versions are {VERSION_V2}..={VERSION}"
        );
        Sperr { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SperrConfig {
        &self.config
    }

    /// Worker count for the pool, clamped to the parallelism actually
    /// available in `chunks`. Deliberately *not* clamped to the chunk
    /// count alone — a single-chunk volume still uses every thread
    /// through the intra-chunk (wavelet-panel / elementwise-sweep)
    /// parallelism — but bounded by those inner job counts, so a tiny
    /// volume on a many-core machine does not spawn workers that
    /// outnumber the jobs they would run.
    pub(crate) fn effective_threads(&self, chunks: &[ChunkSpec]) -> usize {
        let t = if self.config.num_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.config.num_threads
        };
        // Useful-worker ceiling: the outer chunk jobs, or — in the
        // few-chunk regime where the inner levels fan out instead — the
        // strided-pass job count of the largest chunk (lines along the
        // non-transformed axis × panels along x; see `apply_axis_blocked`
        // in `sperr-wavelet`).
        let panel_jobs = chunks
            .iter()
            .map(|c| c.dims[1].max(c.dims[2]) * c.dims[0].div_ceil(PANEL_W))
            .max()
            .unwrap_or(1);
        t.min(chunks.len().max(panel_jobs)).max(1)
    }

    /// The worker-pool size a run over a volume of `dims` would actually
    /// use (thread config clamped to the available parallelism); surfaced
    /// so benchmark artifacts can record it alongside the raw thread
    /// count.
    pub fn effective_workers(&self, dims: [usize; 3]) -> usize {
        self.effective_threads(&chunk_grid(dims, self.config.chunk_dims))
    }

    /// Number of chunks a volume of `dims` partitions into under this
    /// configuration.
    pub fn chunk_count(&self, dims: [usize; 3]) -> usize {
        chunk_grid(dims, self.config.chunk_dims).len()
    }

    /// Compresses and returns the stream together with cost/timing
    /// statistics (the instrumentation behind Figs. 2, 4 and 6).
    pub fn compress_with_stats(
        &self,
        field: &Field,
        bound: Bound,
    ) -> Result<(Vec<u8>, CompressionStats), CompressError> {
        self.compress_impl(field, bound, false)
    }

    /// Compresses an `f32` field through the f32-native pipeline: every
    /// hot-path stage (wavelet, SPECK quantization, outlier scan) runs at
    /// single precision, and the stream is marked f32-native (precision
    /// tag 2) so [`Sperr::decompress_f32`] reconstructs it without an f64
    /// round-trip. The PWE guarantee holds against the f32 samples.
    pub fn compress_f32(
        &self,
        field: &FieldOf<f32>,
        bound: Bound,
    ) -> Result<Vec<u8>, CompressError> {
        self.compress_f32_with_stats(field, bound).map(|(stream, _)| stream)
    }

    /// [`Sperr::compress_f32`] with cost/timing statistics.
    pub fn compress_f32_with_stats(
        &self,
        field: &FieldOf<f32>,
        bound: Bound,
    ) -> Result<(Vec<u8>, CompressionStats), CompressError> {
        self.compress_impl(field, bound, true)
    }

    /// The width-generic compression driver behind both public surfaces.
    /// `native_f32` selects the wire precision tag; the chunk pipeline
    /// itself is monomorphized over `T`, so the `f64` instantiation is
    /// bit-for-bit the pre-generic code path.
    fn compress_impl<T: Float>(
        &self,
        field: &FieldOf<T>,
        bound: Bound,
        native_f32: bool,
    ) -> Result<(Vec<u8>, CompressionStats), CompressError> {
        if field.is_empty() {
            return Err(CompressError::Invalid("empty field".into()));
        }
        let _run = sperr_telemetry::span!("sperr.compress", field.len());
        let _op = sperr_telemetry::OpTimer::new(if native_f32 {
            metric_labels::OP_COMPRESS_F32
        } else {
            metric_labels::OP_COMPRESS_F64
        });
        let chunks_spec = chunk_grid(field.dims, self.config.chunk_dims);
        let (mode, bound_value) = match bound {
            Bound::Pwe(t) => {
                if !(t > 0.0) || !t.is_finite() {
                    return Err(CompressError::Invalid(format!("invalid tolerance {t}")));
                }
                (Mode::Pwe, t)
            }
            Bound::Bpp(r) => {
                if !(r > 0.0) || !r.is_finite() {
                    return Err(CompressError::Invalid(format!("invalid bitrate {r}")));
                }
                (Mode::Bpp, r)
            }
            Bound::Psnr(p) => {
                // §VII extension: average-error-targeted compression via
                // the near-orthogonality of the transform.
                if !(p > 0.0) || !p.is_finite() {
                    return Err(CompressError::Invalid(format!("invalid PSNR target {p}")));
                }
                (Mode::Rmse, p)
            }
        };
        // PSNR targets translate to an RMSE target over the whole field's
        // range; a zero-range (constant) field quantizes relative to its
        // magnitude.
        let rmse_target = if let Mode::Rmse = mode {
            let range = field.range();
            if range > 0.0 {
                range / 10f64.powf(bound_value / 20.0)
            } else {
                let max_abs = field.data.iter().fold(0.0f64, |m, &v| m.max(v.to_f64().abs()));
                max_abs.max(1.0) * f64::exp2(-40.0)
            }
        } else {
            0.0
        };

        // Per-chunk bit budget for size mode: the raw target minus the
        // amortized chunk-table overhead, so the final container lands at
        // or under the requested rate.
        let per_chunk_header_bits = PER_CHUNK_HEADER_BITS;
        let cfg = &self.config;
        let q_factor = cfg.q_factor;
        let kernel = cfg.kernel;
        let volume_dims = field.dims;
        let data = &field.data;

        let n_chunks = chunks_spec.len();
        let threads = self.effective_threads(&chunks_spec);
        let encoded: Vec<ChunkEncoding> = WorkerPool::scoped(threads, |pool| {
            let arenas = PerWorker::new(pool.threads(), ScratchArena::new);
            let inputs = PerWorker::new(pool.threads(), Vec::new);
            let encode_one = |i: usize, w: usize| {
                // SAFETY: concurrent jobs see distinct worker slots (pool
                // contract), so each arena/input buffer has one user.
                let (arena, input) = unsafe { (arenas.get(w), inputs.get(w)) };
                let spec = &chunks_spec[i];
                extract_chunk_into(data, volume_dims, spec, input);
                match mode {
                    Mode::Pwe => compress_chunk_pwe_with(
                        input, spec.dims, bound_value, q_factor, kernel, pool, arena,
                    ),
                    Mode::Bpp => {
                        let budget = ((bound_value * spec.len() as f64) as usize)
                            .saturating_sub(per_chunk_header_bits);
                        compress_chunk_bpp_with(input, spec.dims, budget, kernel, pool, arena)
                    }
                    Mode::Rmse => {
                        compress_chunk_rmse_with(input, spec.dims, rmse_target, kernel, pool, arena)
                    }
                }
            };
            let encoded = if n_chunks >= pool.threads() {
                // Enough chunks to saturate the pool: parallelize the outer
                // loop; each chunk's inner stages then run inline.
                pool.map(n_chunks, |i, w| encode_one(i, w))
            } else {
                // Few chunks: serial outer loop so each chunk's wavelet
                // panels and elementwise sweeps fan out across the pool.
                (0..n_chunks).map(|i| encode_one(i, 0)).collect()
            };
            for w in 0..pool.threads() {
                // SAFETY: all jobs have completed; no concurrent users.
                unsafe { arenas.get(w) }.record_footprint();
            }
            encoded
        });

        let mut stats = CompressionStats {
            num_points: field.len(),
            num_chunks: n_chunks,
            ..CompressionStats::default()
        };
        for enc in &encoded {
            sperr_telemetry::record_bytes(
                metric_labels::SIZE_CHUNK_SPECK,
                enc.speck_stream.len() as u64,
            );
            stats.speck_bits += enc.speck_bits;
            stats.outlier_bits += enc.outlier_bits;
            stats.num_outliers += enc.num_outliers as usize;
            stats.stage_times.accumulate(&enc.times);
            stats.coeff_sq_error += enc.coeff_sq_error;
        }

        let header = Header {
            mode,
            kernel,
            precision: if native_f32 { Precision::Single } else { field.precision },
            native_f32,
            dims: field.dims,
            chunk_dims: cfg.chunk_dims,
            bound_value,
            n_chunks,
        };
        let (container, container_time) = timed(stage_labels::CONTAINER_WRITE, || {
            write_container(&header, &encoded, cfg.container_version)
        });
        stats.container_bytes = container.len();
        stats.stage_times.container = container_time;

        let mut out = Vec::with_capacity(container.len() + 1);
        if cfg.lossless {
            let (packed, lossless_time) =
                timed(stage_labels::LOSSLESS_COMPRESS, || sperr_lossless::compress(&container));
            out.push(OUTER_LOSSLESS);
            out.extend_from_slice(&packed);
            stats.stage_times.lossless = lossless_time;
        } else {
            out.push(OUTER_RAW);
            out.extend_from_slice(&container);
        }
        stats.output_bytes = out.len();
        sperr_telemetry::record_bytes(metric_labels::SIZE_OUTPUT, out.len() as u64);
        Ok((out, stats))
    }

    /// Strips the outer framing, undoing the lossless pass when present.
    /// Returns the raw container and whether the lossless pass was on.
    pub(crate) fn unwrap_outer(stream: &[u8]) -> Result<(Vec<u8>, bool), CompressError> {
        let (&flag, rest) = stream
            .split_first()
            .ok_or_else(|| CompressError::Corrupt("empty stream".into()))?;
        match flag {
            OUTER_RAW => Ok((rest.to_vec(), false)),
            OUTER_LOSSLESS => Ok((sperr_lossless::decompress(rest)?, true)),
            f => Err(CompressError::Corrupt(format!("unknown outer flag {f}"))),
        }
    }

    /// Inspects a SPERR stream without decoding it: dimensions, mode,
    /// chunking and per-chunk stream sizes.
    pub fn inspect(&self, stream: &[u8]) -> Result<StreamInfo, CompressError> {
        let (container, lossless) = Self::unwrap_outer(stream)?;
        let parsed = read_container(&container)?;
        Ok(StreamInfo {
            dims: parsed.header.dims,
            chunk_dims: parsed.header.chunk_dims,
            mode: parsed.header.mode,
            bound_value: parsed.header.bound_value,
            n_chunks: parsed.header.n_chunks,
            precision: parsed.header.precision,
            native_f32: parsed.header.native_f32,
            lossless,
            speck_bytes: parsed.entries.iter().map(|e| e.speck_len).sum(),
            outlier_bytes: parsed.entries.iter().map(|e| e.outlier_len).sum(),
            version: parsed.version,
            payload_offset: parsed.payload_start,
            chunk_payload_sizes: parsed
                .entries
                .iter()
                .map(|e| e.speck_len + e.outlier_len)
                .collect(),
            chunk_index: parsed.index,
        })
    }

    /// Verifies a v2 stream's integrity checksums without running the
    /// (much more expensive) SPECK decode: the header CRC is checked by
    /// the container parser, then each chunk's payload CRC is recomputed.
    /// v1 streams carry no checksums — the report says so via
    /// [`VerifyReport::checksummed`] and trivially lists no corruption.
    pub fn verify(&self, stream: &[u8]) -> Result<VerifyReport, CompressError> {
        let (container, _) = Self::unwrap_outer(stream)?;
        let parsed = read_container(&container)?;
        let mut corrupt_chunks = Vec::new();
        if let Some(crcs) = &parsed.chunk_crcs {
            let offsets = chunk_offsets(&parsed.entries, parsed.payload_start);
            for (i, (e, &start)) in parsed.entries.iter().zip(&offsets).enumerate() {
                let payload = &container[start..start + e.speck_len + e.outlier_len];
                if crc32(payload) != crcs[i] {
                    corrupt_chunks.push(i);
                }
            }
        }
        Ok(VerifyReport {
            version: parsed.version,
            checksummed: parsed.chunk_crcs.is_some(),
            n_chunks: parsed.header.n_chunks,
            corrupt_chunks,
        })
    }

    /// Best-effort decompression of a damaged stream: chunks whose payload
    /// checksum mismatches (v2) or whose decode fails are skipped and
    /// their region of the volume left neutrally zero-filled, while every
    /// healthy chunk is reconstructed normally. The per-chunk outcome is
    /// returned alongside the field. Header-level damage (bad magic,
    /// unreadable chunk table, failed header CRC, or a corrupted lossless
    /// outer wrapper) still fails outright — without the table there is
    /// nothing to salvage.
    pub fn decompress_resilient(
        &self,
        stream: &[u8],
    ) -> Result<(Field, ResilientReport), CompressError> {
        let (container, _) = Self::unwrap_outer(stream)?;
        let parsed = read_container(&container)?;
        let chunks_spec = chunk_grid(parsed.header.dims, parsed.header.chunk_dims);
        if chunks_spec.len() != parsed.entries.len() {
            return Err(CompressError::Corrupt("chunk table size mismatch".into()));
        }
        let tolerance = match parsed.header.mode {
            Mode::Pwe => parsed.header.bound_value,
            Mode::Bpp | Mode::Rmse => 0.0,
        };
        let offsets = chunk_offsets(&parsed.entries, parsed.payload_start);
        let mut volume = vec![0.0f64; parsed.header.dims.iter().product()];
        let mut statuses = Vec::with_capacity(parsed.entries.len());
        for (i, (spec, e)) in chunks_spec.iter().zip(&parsed.entries).enumerate() {
            let start = offsets[i];
            let payload = &container[start..start + e.speck_len + e.outlier_len];
            if let Some(crcs) = &parsed.chunk_crcs {
                if crc32(payload) != crcs[i] {
                    // Known-bad payload: don't even hand it to the coders.
                    statuses.push(ChunkStatus::ChecksumMismatch);
                    continue;
                }
            }
            let (speck, outlier) = payload.split_at(e.speck_len);
            // f32-native payloads decode at native width and widen exactly,
            // matching the strict decoder's output for healthy chunks.
            let result = if parsed.header.native_f32 {
                decompress_chunk::<f32>(
                    speck,
                    outlier,
                    spec.dims,
                    e.q,
                    e.num_planes,
                    e.max_n,
                    tolerance,
                    parsed.header.kernel,
                )
                .map(|c| c.iter().map(|&v| v as f64).collect())
            } else {
                decompress_chunk::<f64>(
                    speck,
                    outlier,
                    spec.dims,
                    e.q,
                    e.num_planes,
                    e.max_n,
                    tolerance,
                    parsed.header.kernel,
                )
            };
            match result {
                Ok(chunk) => {
                    insert_chunk(&mut volume, parsed.header.dims, spec, &chunk);
                    statuses.push(ChunkStatus::Ok);
                }
                Err(e) => statuses.push(ChunkStatus::DecodeFailed(e)),
            }
        }
        let field =
            Field::new(parsed.header.dims, volume).with_precision(parsed.header.precision);
        Ok((field, ResilientReport { statuses }))
    }

    /// Multi-resolution decompression (§VII): reconstructs the field at
    /// `1/2^level` resolution per axis by undoing only the coarser
    /// transform levels. `level = 0` is full resolution (without outlier
    /// corrections applied at `level > 0`, which are full-resolution
    /// data). Requires every chunk to have at least `level` transform
    /// levels on every axis and `chunk_dims` divisible by `2^level`.
    pub fn decompress_multires(
        &self,
        stream: &[u8],
        level: usize,
    ) -> Result<Field, CompressError> {
        if level == 0 {
            return self.decompress(stream);
        }
        let (container, _) = Self::unwrap_outer(stream)?;
        let parsed = read_container(&container)?;
        verify_chunk_crcs(&container, &parsed)?;
        let Header { dims, chunk_dims, kernel, precision, .. } = parsed.header;
        let entries = parsed.entries;
        let payload_start = parsed.payload_start;
        let chunks_spec = chunk_grid(dims, chunk_dims);
        if chunks_spec.len() != entries.len() {
            return Err(CompressError::Corrupt("chunk table size mismatch".into()));
        }
        let step = 1usize << level;
        // Offsets are multiples of chunk_dims; they must stay aligned
        // after coarsening (single-chunk streams are always fine).
        if chunks_spec.len() > 1 && chunk_dims.iter().any(|&d| d % step != 0) {
            return Err(CompressError::Invalid(format!(
                "chunk dims {chunk_dims:?} not divisible by 2^{level}"
            )));
        }
        // Coarse volume geometry: iterated ceil-halving == ceil(n / 2^l).
        let cdims =
            [dims[0].div_ceil(step), dims[1].div_ceil(step), dims[2].div_ceil(step)];
        let mut volume = vec![0.0f64; cdims.iter().product()];
        let mut cursor = payload_start;
        for (spec, e) in chunks_spec.iter().zip(&entries) {
            let speck = &container[cursor..cursor + e.speck_len];
            cursor += e.speck_len + e.outlier_len;
            let (chunk, chunk_cdims) =
                decompress_chunk_multires(speck, spec.dims, e.q, e.num_planes, level, kernel)?;
            let coffset = [spec.offset[0] / step, spec.offset[1] / step, spec.offset[2] / step];
            insert_chunk(
                &mut volume,
                cdims,
                &crate::chunk::ChunkSpec { offset: coffset, dims: chunk_cdims },
                &chunk,
            );
        }
        Ok(Field::new(cdims, volume).with_precision(precision))
    }

    /// Region-of-interest decompression: reconstructs only the sub-box
    /// `[lo, hi)` of the volume, decoding just the chunks that intersect
    /// it — the practical payoff of SPERR's chunked storage for
    /// explorative analysis. Returns a field of dims `hi - lo`.
    ///
    /// Strict wrapper around [`Sperr::decode_region`]: any intersecting
    /// chunk that fails its checksum or decode fails the whole call.
    pub fn decompress_region(
        &self,
        stream: &[u8],
        lo: [usize; 3],
        hi: [usize; 3],
    ) -> Result<Field, CompressError> {
        let (field, report) = self.decode_region(stream, lo, hi)?;
        for (&id, status) in report.chunk_ids.iter().zip(&report.statuses) {
            match status {
                ChunkStatus::Ok => {}
                ChunkStatus::ChecksumMismatch => {
                    return Err(CompressError::Corrupt(format!(
                        "chunk {id} payload checksum mismatch"
                    )))
                }
                ChunkStatus::DecodeFailed(e) => return Err(e.clone()),
            }
        }
        Ok(field)
    }

    /// Random-access decode of the sub-box `[lo, hi)`: maps the bbox to
    /// the intersecting chunks through the chunk grid, seeks straight to
    /// their payloads via the container-v3 chunk index (v1/v2 streams
    /// fall back to a chunk-table scan — see [`RegionReport::used_index`]),
    /// decodes only those chunks in parallel on the worker pool, and
    /// assembles the sub-volume. Damage is contained per chunk, like
    /// [`Sperr::decompress_resilient`]: a chunk failing its CRC or decode
    /// leaves its intersection zero-filled and is reported in the
    /// [`RegionReport`] instead of failing the call. Only the checksums
    /// of *touched* chunks are inspected — corruption elsewhere in the
    /// stream neither slows the query down nor fails it.
    ///
    /// Within the region the output is bit-identical to the same slice of
    /// a full [`Sperr::decompress`] (chunks decode independently, and
    /// skipped outlier corrections are point-local).
    pub fn decode_region(
        &self,
        stream: &[u8],
        lo: [usize; 3],
        hi: [usize; 3],
    ) -> Result<(Field, RegionReport), CompressError> {
        let _run = sperr_telemetry::span!("sperr.decode_region", stream.len());
        let _op = sperr_telemetry::OpTimer::new(metric_labels::OP_DECODE_REGION);
        let (container, _) = Self::unwrap_outer(stream)?;
        let parsed = read_container(&container)?;
        let header = parsed.header;
        let entries = parsed.entries;
        for d in 0..3 {
            if lo[d] >= hi[d] || hi[d] > header.dims[d] {
                return Err(CompressError::Invalid(format!(
                    "region [{lo:?}, {hi:?}) out of bounds for dims {:?}",
                    header.dims
                )));
            }
        }
        let chunks_spec = chunk_grid(header.dims, header.chunk_dims);
        if chunks_spec.len() != entries.len() {
            return Err(CompressError::Corrupt("chunk table size mismatch".into()));
        }
        // Seek table. The v3 index gives each payload's offset directly;
        // legacy v1/v2 streams force a full walk of the chunk table (the
        // documented fallback — cheap relative to decode, but a scan all
        // the same, hence the one-time nudge to re-encode).
        let used_index = parsed.index.is_some();
        let offsets: Vec<usize> = match &parsed.index {
            Some(index) => {
                index.iter().map(|e| parsed.payload_start + e.offset as usize).collect()
            }
            None => {
                warn_legacy_region_scan(parsed.version);
                chunk_offsets(&entries, parsed.payload_start)
            }
        };
        let tolerance = match header.mode {
            Mode::Pwe => header.bound_value,
            Mode::Bpp | Mode::Rmse => 0.0,
        };

        // Clip the bbox against the grid: one decode job per intersecting
        // chunk, carrying the chunk-local box to keep.
        struct Target {
            chunk: usize,
            isect_lo: [usize; 3],
            isect_hi: [usize; 3],
        }
        let mut targets = Vec::new();
        let mut target_specs = Vec::new();
        for (i, spec) in chunks_spec.iter().enumerate() {
            let c_lo = spec.offset;
            let c_hi = [
                spec.offset[0] + spec.dims[0],
                spec.offset[1] + spec.dims[1],
                spec.offset[2] + spec.dims[2],
            ];
            let isect_lo = [lo[0].max(c_lo[0]), lo[1].max(c_lo[1]), lo[2].max(c_lo[2])];
            let isect_hi = [hi[0].min(c_hi[0]), hi[1].min(c_hi[1]), hi[2].min(c_hi[2])];
            if (0..3).any(|d| isect_lo[d] >= isect_hi[d]) {
                continue; // chunk does not touch the region
            }
            targets.push(Target { chunk: i, isect_lo, isect_hi });
            target_specs.push(*spec);
        }

        let n_targets = targets.len();
        sperr_telemetry::counter!("region.chunks_touched", n_targets);
        sperr_telemetry::counter!("region.used_index", used_index as u64);
        let threads = self.effective_threads(&target_specs);
        let container_ref = &container;
        let entries_ref = &entries;
        let offsets_ref = &offsets;
        let specs_ref = &chunks_spec;
        let targets_ref = &targets;
        let crcs_ref = &parsed.chunk_crcs;
        let kernel = header.kernel;
        let native_f32 = header.native_f32;
        let decoded: Vec<(Vec<f64>, ChunkStatus)> = WorkerPool::scoped(threads, |pool| {
            let arenas = PerWorker::new(pool.threads(), ScratchArena::new);
            let decode_one = |j: usize, w: usize| {
                let t = &targets_ref[j];
                let spec = &specs_ref[t.chunk];
                let e = &entries_ref[t.chunk];
                let start = offsets_ref[t.chunk];
                let payload = &container_ref[start..start + e.speck_len + e.outlier_len];
                if let Some(crcs) = crcs_ref {
                    if crc32(payload) != crcs[t.chunk] {
                        return (vec![0.0; spec.len()], ChunkStatus::ChecksumMismatch);
                    }
                }
                let (speck, outlier) = payload.split_at(e.speck_len);
                // Chunk-local keep box: only corrections landing inside
                // the intersection matter for the assembled output.
                let keep_lo = [
                    t.isect_lo[0] - spec.offset[0],
                    t.isect_lo[1] - spec.offset[1],
                    t.isect_lo[2] - spec.offset[2],
                ];
                let keep_hi = [
                    t.isect_hi[0] - spec.offset[0],
                    t.isect_hi[1] - spec.offset[1],
                    t.isect_hi[2] - spec.offset[2],
                ];
                // f32-native payloads decode at native width (with a local
                // arena — region queries are chunk-sparse, so scratch reuse
                // matters less than on the full-decode path) and widen
                // exactly, keeping the bit-identity contract with the
                // full-decompress slice.
                let decoded = if native_f32 {
                    let mut arena32 = ScratchArena::<f32>::new();
                    let r = decompress_chunk_region_with(
                        speck,
                        outlier,
                        spec.dims,
                        e.q,
                        e.num_planes,
                        e.max_n,
                        tolerance,
                        kernel,
                        keep_lo,
                        keep_hi,
                        pool,
                        &mut arena32,
                    );
                    arena32.record_footprint();
                    r.map(|(c, t)| (c.iter().map(|&v| v as f64).collect::<Vec<f64>>(), t))
                } else {
                    // SAFETY: concurrent jobs see distinct worker slots.
                    let arena = unsafe { arenas.get(w) };
                    decompress_chunk_region_with(
                        speck,
                        outlier,
                        spec.dims,
                        e.q,
                        e.num_planes,
                        e.max_n,
                        tolerance,
                        kernel,
                        keep_lo,
                        keep_hi,
                        pool,
                        arena,
                    )
                };
                match decoded {
                    Ok((chunk, _)) => (chunk, ChunkStatus::Ok),
                    Err(err) => (vec![0.0; spec.len()], ChunkStatus::DecodeFailed(err)),
                }
            };
            let decoded = if n_targets >= pool.threads() {
                pool.map(n_targets, |j, w| decode_one(j, w))
            } else {
                (0..n_targets).map(|j| decode_one(j, 0)).collect()
            };
            for w in 0..pool.threads() {
                // SAFETY: all jobs have completed; no concurrent users.
                unsafe { arenas.get(w) }.record_footprint();
            }
            decoded
        });

        let region_dims = [hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]];
        let mut out = vec![0.0f64; region_dims.iter().product()];
        let mut chunk_ids = Vec::with_capacity(n_targets);
        let mut statuses = Vec::with_capacity(n_targets);
        for (t, (chunk, status)) in targets.iter().zip(decoded) {
            let spec = &chunks_spec[t.chunk];
            if matches!(status, ChunkStatus::Ok) {
                for z in t.isect_lo[2]..t.isect_hi[2] {
                    for y in t.isect_lo[1]..t.isect_hi[1] {
                        let src_row = (t.isect_lo[0] - spec.offset[0])
                            + spec.dims[0]
                                * ((y - spec.offset[1]) + spec.dims[1] * (z - spec.offset[2]));
                        let dst_row = (t.isect_lo[0] - lo[0])
                            + region_dims[0] * ((y - lo[1]) + region_dims[1] * (z - lo[2]));
                        let len = t.isect_hi[0] - t.isect_lo[0];
                        out[dst_row..dst_row + len]
                            .copy_from_slice(&chunk[src_row..src_row + len]);
                    }
                }
            }
            chunk_ids.push(t.chunk);
            statuses.push(status);
        }
        let field = Field::new(region_dims, out).with_precision(header.precision);
        Ok((field, RegionReport { chunk_ids, statuses, used_index }))
    }

    /// Progressive (preview) decode: reconstructs the full volume with
    /// each chunk's embedded SPECK stream truncated at `budgets[chunk]`
    /// bytes (clamped to the stream's actual length; `usize::MAX` means
    /// "everything"). Truncation is the embedded-coding contract, not
    /// corruption: the SPECK decoder treats budget exhaustion as clean
    /// early exit, so any budget decodes without error to a coarser
    /// field. Outlier corrections are full-fidelity data and are skipped
    /// entirely — previews carry no point-wise error guarantee.
    pub fn decode_at_budgets(
        &self,
        stream: &[u8],
        budgets: &[usize],
    ) -> Result<Field, CompressError> {
        let _run = sperr_telemetry::span!("sperr.decode_at_budgets", stream.len());
        let _op = sperr_telemetry::OpTimer::new(metric_labels::OP_DECODE_PREVIEW);
        let (container, _) = Self::unwrap_outer(stream)?;
        let parsed = read_container(&container)?;
        verify_chunk_crcs(&container, &parsed)?;
        let header = parsed.header;
        let entries = parsed.entries;
        if budgets.len() != entries.len() {
            return Err(CompressError::Invalid(format!(
                "{} budgets for {} chunks",
                budgets.len(),
                entries.len()
            )));
        }
        let chunks_spec = chunk_grid(header.dims, header.chunk_dims);
        if chunks_spec.len() != entries.len() {
            return Err(CompressError::Corrupt("chunk table size mismatch".into()));
        }
        let offsets = chunk_offsets(&entries, parsed.payload_start);
        let kept_bytes: usize =
            entries.iter().zip(budgets).map(|(e, &b)| e.speck_len.min(b)).sum();
        sperr_telemetry::counter!("preview.kept_speck_bytes", kept_bytes);
        let n_chunks = entries.len();
        let threads = self.effective_threads(&chunks_spec);
        let container_ref = &container;
        let entries_ref = &entries;
        let offsets_ref = &offsets;
        let specs_ref = &chunks_spec;
        let kernel = header.kernel;
        let native_f32 = header.native_f32;
        type Decoded = Result<(Vec<f64>, StageTimes), CompressError>;
        let decoded: Vec<Decoded> = WorkerPool::scoped(threads, |pool| {
            let arenas = PerWorker::new(pool.threads(), ScratchArena::new);
            let decode_one = |i: usize, w: usize| {
                let e = &entries_ref[i];
                let start = offsets_ref[i];
                let keep = e.speck_len.min(budgets[i]);
                let speck = &container_ref[start..start + keep];
                // Empty outlier stream + zero tolerance: corrections do
                // not apply to a truncated reconstruction.
                if native_f32 {
                    // f32-native payloads preview at native width and widen
                    // exactly, so decode_at_bpp stays bit-identical to
                    // transcode-then-decompress for tag-2 streams too.
                    let mut arena32 = ScratchArena::<f32>::new();
                    let r = decompress_chunk_with(
                        speck,
                        &[],
                        specs_ref[i].dims,
                        e.q,
                        e.num_planes,
                        0,
                        0.0,
                        kernel,
                        pool,
                        &mut arena32,
                    );
                    arena32.record_footprint();
                    r.map(|(c, t)| (c.iter().map(|&v| v as f64).collect::<Vec<f64>>(), t))
                } else {
                    // SAFETY: concurrent jobs see distinct worker slots.
                    let arena = unsafe { arenas.get(w) };
                    decompress_chunk_with(
                        speck,
                        &[],
                        specs_ref[i].dims,
                        e.q,
                        e.num_planes,
                        0,
                        0.0,
                        kernel,
                        pool,
                        arena,
                    )
                }
            };
            let decoded = if n_chunks >= pool.threads() {
                pool.map(n_chunks, |i, w| decode_one(i, w))
            } else {
                (0..n_chunks).map(|i| decode_one(i, 0)).collect()
            };
            for w in 0..pool.threads() {
                // SAFETY: all jobs have completed; no concurrent users.
                unsafe { arenas.get(w) }.record_footprint();
            }
            decoded
        });
        let mut volume = vec![0.0f64; header.dims.iter().product()];
        for (spec, result) in chunks_spec.iter().zip(decoded) {
            let (chunk, _) = result?;
            insert_chunk(&mut volume, header.dims, spec, &chunk);
        }
        Ok(Field::new(header.dims, volume).with_precision(header.precision))
    }

    /// Progressive (preview) decode at a uniform rate: truncates each
    /// chunk's SPECK stream at the byte budget a `bpp` bits-per-point
    /// target implies (the same per-chunk accounting as
    /// [`Sperr::transcode_to_bpp`], so `decode_at_bpp(s, r)` is
    /// bit-identical to `decompress(transcode_to_bpp(s, r))` without
    /// materializing the transcoded stream). See
    /// [`Sperr::decode_at_budgets`].
    pub fn decode_at_bpp(&self, stream: &[u8], bpp: f64) -> Result<Field, CompressError> {
        if !(bpp > 0.0) || !bpp.is_finite() {
            return Err(CompressError::Invalid(format!("invalid bitrate {bpp}")));
        }
        let info = self.inspect(stream)?;
        let budgets: Vec<usize> = chunk_grid(info.dims, info.chunk_dims)
            .iter()
            .map(|spec| ((bpp * spec.len() as f64) as usize / 8).saturating_sub(26))
            .collect();
        self.decode_at_budgets(stream, &budgets)
    }

    /// Re-rates an existing SPERR stream to a (lower) size target without
    /// re-encoding, by truncating each chunk's embedded SPECK stream (§VII:
    /// "any prefix of the bitstream can reconstruct a less-accurate
    /// version of the data"). Outlier corrections are dropped — the result
    /// is a size-bounded stream with no error guarantee.
    pub fn transcode_to_bpp(&self, stream: &[u8], bpp: f64) -> Result<Vec<u8>, CompressError> {
        if !(bpp > 0.0) || !bpp.is_finite() {
            return Err(CompressError::Invalid(format!("invalid bitrate {bpp}")));
        }
        let (container, lossless) = Self::unwrap_outer(stream)?;
        let parsed = read_container(&container)?;
        verify_chunk_crcs(&container, &parsed)?;
        let header = parsed.header;
        let entries = parsed.entries;
        let payload_start = parsed.payload_start;
        let chunks_spec = chunk_grid(header.dims, header.chunk_dims);
        if chunks_spec.len() != entries.len() {
            return Err(CompressError::Corrupt("chunk table size mismatch".into()));
        }
        let mut new_chunks = Vec::with_capacity(entries.len());
        let mut cursor = payload_start;
        for (spec, e) in chunks_spec.iter().zip(&entries) {
            let speck = &container[cursor..cursor + e.speck_len];
            cursor += e.speck_len + e.outlier_len;
            let budget_bytes = ((bpp * spec.len() as f64) as usize / 8).saturating_sub(26);
            let keep = e.speck_len.min(budget_bytes);
            new_chunks.push(ChunkEncoding {
                speck_stream: speck[..keep].to_vec(),
                outlier_stream: Vec::new(),
                q: e.q,
                num_planes: e.num_planes,
                max_n: 0,
                num_outliers: 0,
                speck_bits: keep * 8,
                outlier_bits: 0,
                times: Default::default(),
                coeff_sq_error: 0.0,
                max_err: f64::NAN, // truncation voids the recorded bound
            });
        }
        let new_header = Header {
            mode: Mode::Bpp,
            kernel: header.kernel,
            precision: header.precision,
            native_f32: header.native_f32,
            dims: header.dims,
            chunk_dims: header.chunk_dims,
            bound_value: bpp,
            n_chunks: new_chunks.len(),
        };
        // Keep the source stream's container version (v1 sources stay at
        // v2: the writer no longer emits v1 except via `downgrade_to_v1`).
        let new_container =
            write_container(&new_header, &new_chunks, parsed.version.max(VERSION_V2));
        let mut out = Vec::with_capacity(new_container.len() + 1);
        if lossless {
            out.push(OUTER_LOSSLESS);
            out.extend_from_slice(&sperr_lossless::compress(&new_container));
        } else {
            out.push(OUTER_RAW);
            out.extend_from_slice(&new_container);
        }
        Ok(out)
    }

    /// Re-frames a stream as a legacy **container v1** (checksum-free)
    /// stream with byte-identical chunk payloads, preserving the outer
    /// lossless framing. Real v1 streams predate this repo's checksummed
    /// container; this is how the conformance suite regenerates its
    /// committed v1 back-compat fixture without keeping an old encoder
    /// around. The result must always decode to exactly the same field as
    /// the input stream.
    pub fn downgrade_to_v1(&self, stream: &[u8]) -> Result<Vec<u8>, CompressError> {
        let (container, lossless) = Self::unwrap_outer(stream)?;
        let parsed = read_container(&container)?;
        verify_chunk_crcs(&container, &parsed)?;
        let offsets = chunk_offsets(&parsed.entries, parsed.payload_start);
        let chunks: Vec<ChunkEncoding> = parsed
            .entries
            .iter()
            .zip(&offsets)
            .map(|(e, &s)| ChunkEncoding {
                speck_stream: container[s..s + e.speck_len].to_vec(),
                outlier_stream: container[s + e.speck_len..s + e.speck_len + e.outlier_len]
                    .to_vec(),
                q: e.q,
                num_planes: e.num_planes,
                max_n: e.max_n,
                num_outliers: e.num_outliers,
                speck_bits: e.speck_len * 8,
                outlier_bits: e.outlier_len * 8,
                times: Default::default(),
                coeff_sq_error: 0.0,
                max_err: f64::NAN, // not representable in v1
            })
            .collect();
        let v1 = crate::container::write_container_v1(&parsed.header, &chunks);
        let mut out = Vec::with_capacity(v1.len() + 1);
        if lossless {
            out.push(OUTER_LOSSLESS);
            out.extend_from_slice(&sperr_lossless::compress(&v1));
        } else {
            out.push(OUTER_RAW);
            out.extend_from_slice(&v1);
        }
        Ok(out)
    }

    /// Re-frames a stream as a **container v2** (checksummed, index-free)
    /// stream with byte-identical chunk payloads, preserving the outer
    /// lossless framing. The v3 → v2 downgrade drops only the chunk
    /// index, which is derived data — the result must always decode to
    /// exactly the same field as the input stream. Used by the
    /// conformance suite to prove the v3 fixtures are v2 goldens plus an
    /// index and nothing else.
    pub fn downgrade_to_v2(&self, stream: &[u8]) -> Result<Vec<u8>, CompressError> {
        let (container, lossless) = Self::unwrap_outer(stream)?;
        let parsed = read_container(&container)?;
        verify_chunk_crcs(&container, &parsed)?;
        let offsets = chunk_offsets(&parsed.entries, parsed.payload_start);
        let chunks: Vec<ChunkEncoding> = parsed
            .entries
            .iter()
            .zip(&offsets)
            .map(|(e, &s)| ChunkEncoding {
                speck_stream: container[s..s + e.speck_len].to_vec(),
                outlier_stream: container[s + e.speck_len..s + e.speck_len + e.outlier_len]
                    .to_vec(),
                q: e.q,
                num_planes: e.num_planes,
                max_n: e.max_n,
                num_outliers: e.num_outliers,
                speck_bits: e.speck_len * 8,
                outlier_bits: e.outlier_len * 8,
                times: Default::default(),
                coeff_sq_error: 0.0,
                max_err: f64::NAN, // not representable in v2
            })
            .collect();
        let v2 = write_container(&parsed.header, &chunks, VERSION_V2);
        let mut out = Vec::with_capacity(v2.len() + 1);
        if lossless {
            out.push(OUTER_LOSSLESS);
            out.extend_from_slice(&sperr_lossless::compress(&v2));
        } else {
            out.push(OUTER_RAW);
            out.extend_from_slice(&v2);
        }
        Ok(out)
    }

    /// Decompresses and returns the field together with per-stage timing
    /// statistics (surfaced by the CLI's `info --verbose`).
    pub fn decompress_with_stats(
        &self,
        stream: &[u8],
    ) -> Result<(Field, CompressionStats), CompressError> {
        let _run = sperr_telemetry::span!("sperr.decompress", stream.len());
        // The op label depends on the stream's width tag, unknown until
        // the container parses — so time manually and record on success.
        let op_t0 = sperr_telemetry::is_recording().then(std::time::Instant::now);
        let (unwrapped, lossless_time) =
            timed(stage_labels::LOSSLESS_DECOMPRESS, || Self::unwrap_outer(stream));
        let (container, was_lossless) = unwrapped?;
        // Strict mode: any checksummed chunk failing its CRC fails the
        // whole decode (use `decompress_resilient` to salvage the rest).
        let (parsed, container_time) = timed(stage_labels::CONTAINER_READ, || {
            let parsed = read_container(&container)?;
            verify_chunk_crcs(&container, &parsed)?;
            Ok::<_, CompressError>(parsed)
        });
        let parsed = parsed?;
        let header = parsed.header;
        let entries = parsed.entries;
        let (volume, chunk_times) = if header.native_f32 {
            // f32-native payloads decode at their native width; widening
            // for the f64 surface is exact, so this field carries exactly
            // the values `decompress_f32` would return.
            let (v32, t) =
                self.decode_volume::<f32>(&container, &header, &entries, parsed.payload_start)?;
            (v32.iter().map(|&v| v as f64).collect::<Vec<f64>>(), t)
        } else {
            self.decode_volume::<f64>(&container, &header, &entries, parsed.payload_start)?
        };

        let mut stats = CompressionStats {
            num_points: header.dims.iter().product(),
            num_chunks: entries.len(),
            container_bytes: container.len(),
            output_bytes: stream.len(),
            ..CompressionStats::default()
        };
        if was_lossless {
            stats.stage_times.lossless = lossless_time;
        }
        stats.stage_times.container = container_time;
        stats.stage_times.accumulate(&chunk_times);
        if let Some(t0) = op_t0 {
            let label = if header.native_f32 {
                metric_labels::OP_DECOMPRESS_F32
            } else {
                metric_labels::OP_DECOMPRESS_F64
            };
            sperr_telemetry::record_ns(label, t0.elapsed().as_nanos() as u64);
        }
        let field = Field::new(header.dims, volume).with_precision(header.precision);
        Ok((field, stats))
    }

    /// Reconstructs an f32-native stream (precision tag 2) at its native
    /// width — no f64 materialization anywhere on the chunk hot path.
    /// Streams from the f64 pipeline (tags 0/1) are rejected: narrowing
    /// their decode is lossy, so the caller must opt in explicitly via
    /// [`Sperr::decompress`] + [`Field::narrow_lossy`].
    pub fn decompress_f32(&self, stream: &[u8]) -> Result<FieldOf<f32>, CompressError> {
        self.decompress_f32_with_stats(stream).map(|(field, _)| field)
    }

    /// [`Sperr::decompress_f32`] with per-stage timing statistics.
    pub fn decompress_f32_with_stats(
        &self,
        stream: &[u8],
    ) -> Result<(FieldOf<f32>, CompressionStats), CompressError> {
        let _run = sperr_telemetry::span!("sperr.decompress_f32", stream.len());
        let _op = sperr_telemetry::OpTimer::new(metric_labels::OP_DECOMPRESS_F32);
        let (unwrapped, lossless_time) =
            timed(stage_labels::LOSSLESS_DECOMPRESS, || Self::unwrap_outer(stream));
        let (container, was_lossless) = unwrapped?;
        let (parsed, container_time) = timed(stage_labels::CONTAINER_READ, || {
            let parsed = read_container(&container)?;
            verify_chunk_crcs(&container, &parsed)?;
            Ok::<_, CompressError>(parsed)
        });
        let parsed = parsed?;
        if !parsed.header.native_f32 {
            return Err(CompressError::Invalid(
                "stream is not f32-native; decode it with decompress() and narrow explicitly"
                    .into(),
            ));
        }
        let header = parsed.header;
        let entries = parsed.entries;
        let (volume, chunk_times) =
            self.decode_volume::<f32>(&container, &header, &entries, parsed.payload_start)?;
        let mut stats = CompressionStats {
            num_points: header.dims.iter().product(),
            num_chunks: entries.len(),
            container_bytes: container.len(),
            output_bytes: stream.len(),
            ..CompressionStats::default()
        };
        if was_lossless {
            stats.stage_times.lossless = lossless_time;
        }
        stats.stage_times.container = container_time;
        stats.stage_times.accumulate(&chunk_times);
        let field = FieldOf::<f32>::new(header.dims, volume).with_precision(header.precision);
        Ok((field, stats))
    }

    /// Decodes every chunk of a parsed container at sample width `T` and
    /// assembles the full volume, returning it with the accumulated
    /// per-chunk stage times. Pool scheduling (outer chunk map vs.
    /// intra-chunk fan-out) is width-independent, so thread-count
    /// determinism holds at both widths.
    fn decode_volume<T: Float>(
        &self,
        container: &[u8],
        header: &Header,
        entries: &[ChunkEntry],
        payload_start: usize,
    ) -> Result<(Vec<T>, StageTimes), CompressError> {
        let chunks_spec = chunk_grid(header.dims, header.chunk_dims);
        if chunks_spec.len() != entries.len() {
            return Err(CompressError::Corrupt("chunk table size mismatch".into()));
        }

        // Pre-slice each chunk's payload region.
        let offsets = chunk_offsets(entries, payload_start);

        let tolerance = match header.mode {
            Mode::Pwe => header.bound_value,
            Mode::Bpp | Mode::Rmse => 0.0,
        };
        let n_chunks = entries.len();
        let threads = self.effective_threads(&chunks_spec);
        let offsets_ref = &offsets;
        let specs_ref = &chunks_spec;
        let kernel = header.kernel;
        type Decoded<T> = Result<(Vec<T>, StageTimes), CompressError>;
        let decoded: Vec<Decoded<T>> = WorkerPool::scoped(threads, |pool| {
            let arenas = PerWorker::new(pool.threads(), ScratchArena::<T>::new);
            let decode_one = |i: usize, w: usize| {
                // SAFETY: concurrent jobs see distinct worker slots.
                let arena = unsafe { arenas.get(w) };
                let e = &entries[i];
                let start = offsets_ref[i];
                let speck = &container[start..start + e.speck_len];
                let outlier =
                    &container[start + e.speck_len..start + e.speck_len + e.outlier_len];
                decompress_chunk_with(
                    speck,
                    outlier,
                    specs_ref[i].dims,
                    e.q,
                    e.num_planes,
                    e.max_n,
                    tolerance,
                    kernel,
                    pool,
                    arena,
                )
            };
            let decoded = if n_chunks >= pool.threads() {
                pool.map(n_chunks, |i, w| decode_one(i, w))
            } else {
                (0..n_chunks).map(|i| decode_one(i, 0)).collect()
            };
            for w in 0..pool.threads() {
                // SAFETY: all jobs have completed; no concurrent users.
                unsafe { arenas.get(w) }.record_footprint();
            }
            decoded
        });

        let mut times = StageTimes::default();
        let mut volume = vec![T::ZERO; header.dims.iter().product()];
        for (spec, result) in chunks_spec.iter().zip(decoded) {
            let (chunk, t) = result?;
            times.accumulate(&t);
            insert_chunk(&mut volume, header.dims, spec, &chunk);
        }
        Ok((volume, times))
    }
}

/// One-time warning that a region query had to scan a legacy container.
/// `Once` so a service looping over regions does not flood stderr; the
/// fallback itself is fully supported, just not seekable.
fn warn_legacy_region_scan(version: u8) {
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        eprintln!(
            "sperr: container v{version} carries no chunk index; decode_region is walking \
             the chunk table instead of seeking (re-encode as container v3 for indexed \
             random access). This warning is printed once per process."
        );
    });
}

/// Byte offset of each chunk's payload within the container.
pub(crate) fn chunk_offsets(entries: &[ChunkEntry], payload_start: usize) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(entries.len());
    let mut cursor = payload_start;
    for e in entries {
        offsets.push(cursor);
        cursor += e.speck_len + e.outlier_len;
    }
    offsets
}

/// Checks every chunk payload against its v2 CRC; no-op for v1 streams.
pub(crate) fn verify_chunk_crcs(
    container: &[u8],
    parsed: &crate::container::Parsed,
) -> Result<(), CompressError> {
    let Some(crcs) = &parsed.chunk_crcs else { return Ok(()) };
    let offsets = chunk_offsets(&parsed.entries, parsed.payload_start);
    for (i, (e, &start)) in parsed.entries.iter().zip(&offsets).enumerate() {
        let payload = &container[start..start + e.speck_len + e.outlier_len];
        if crc32(payload) != crcs[i] {
            return Err(CompressError::Corrupt(format!("chunk {i} payload checksum mismatch")));
        }
    }
    Ok(())
}

/// Outcome of one chunk in [`Sperr::decompress_resilient`].
#[derive(Debug, Clone, PartialEq)]
pub enum ChunkStatus {
    /// Decoded normally.
    Ok,
    /// The v2 payload checksum failed; the chunk was not decoded.
    ChecksumMismatch,
    /// The payload passed its checksum (or the stream is v1) but the
    /// coders rejected it.
    DecodeFailed(CompressError),
}

/// Per-chunk outcomes of a resilient decode.
#[derive(Debug, Clone)]
pub struct ResilientReport {
    /// One status per chunk, in chunk-grid order.
    pub statuses: Vec<ChunkStatus>,
}

impl ResilientReport {
    /// True when every chunk decoded cleanly.
    pub fn all_ok(&self) -> bool {
        self.statuses.iter().all(|s| matches!(s, ChunkStatus::Ok))
    }

    /// Indices of chunks that failed (either way).
    pub fn failed_chunks(&self) -> Vec<usize> {
        self.statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| !matches!(s, ChunkStatus::Ok))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Per-chunk outcomes of a region decode (see [`Sperr::decode_region`]).
/// Only the chunks intersecting the requested bbox appear; `chunk_ids[i]`
/// names the grid index `statuses[i]` refers to.
#[derive(Debug, Clone)]
pub struct RegionReport {
    /// Grid indices of the chunks that intersect the region, ascending.
    pub chunk_ids: Vec<usize>,
    /// One status per intersecting chunk, parallel to `chunk_ids`.
    pub statuses: Vec<ChunkStatus>,
    /// Whether the container-v3 chunk index was used to seek (false for
    /// legacy v1/v2 streams, which fall back to a chunk-table scan).
    pub used_index: bool,
}

impl RegionReport {
    /// True when every intersecting chunk decoded cleanly.
    pub fn all_ok(&self) -> bool {
        self.statuses.iter().all(|s| matches!(s, ChunkStatus::Ok))
    }
}

/// Result of a checksum-only integrity pass (see [`Sperr::verify`]).
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Container format version (1, 2 or 3).
    pub version: u8,
    /// Whether the stream carries checksums at all (v2 only).
    pub checksummed: bool,
    /// Number of chunks in the stream.
    pub n_chunks: usize,
    /// Indices of chunks whose payload CRC failed.
    pub corrupt_chunks: Vec<usize>,
}

impl VerifyReport {
    /// True when no checksum failed (vacuously true for v1 streams —
    /// check [`Self::checksummed`] to tell the difference).
    pub fn is_ok(&self) -> bool {
        self.corrupt_chunks.is_empty()
    }
}

/// Metadata describing a SPERR stream (see [`Sperr::inspect`]).
#[derive(Debug, Clone)]
pub struct StreamInfo {
    /// Full-resolution volume dimensions.
    pub dims: [usize; 3],
    /// Chunk extent used at compression time.
    pub chunk_dims: [usize; 3],
    /// Termination mode.
    pub mode: Mode,
    /// The bound's value: tolerance (PWE), bits-per-point (BPP) or PSNR
    /// target in dB (RMSE mode).
    pub bound_value: f64,
    /// Number of chunks.
    pub n_chunks: usize,
    /// Source precision recorded in the header.
    pub precision: Precision,
    /// Whether the SPECK payload is f32-native (precision tag 2). When
    /// false with `precision == Single`, the stream is a legacy
    /// widen-at-ingest encode whose payload is f64.
    pub native_f32: bool,
    /// Whether the lossless post-pass was applied.
    pub lossless: bool,
    /// Total SPECK payload bytes across chunks.
    pub speck_bytes: usize,
    /// Total outlier payload bytes across chunks.
    pub outlier_bytes: usize,
    /// Container format version (1 = legacy, 2 = checksummed,
    /// 3 = checksummed + chunk index).
    pub version: u8,
    /// Byte offset of the first chunk payload *within the container*
    /// (add 1 for the outer flag byte when `lossless` is false; for
    /// lossless streams the container is not byte-addressable from the
    /// outside).
    pub payload_offset: usize,
    /// Per-chunk payload sizes (SPECK + outlier bytes), in chunk order.
    pub chunk_payload_sizes: Vec<usize>,
    /// The v3 chunk index (offset, length, grid coordinates, max error
    /// per chunk), validated against the chunk table; `None` for v1/v2.
    pub chunk_index: Option<Vec<ChunkIndexEntry>>,
}

impl LossyCompressor for Sperr {
    fn name(&self) -> &'static str {
        "SPERR"
    }

    fn supports(&self, bound: &Bound) -> bool {
        matches!(bound, Bound::Pwe(_) | Bound::Bpp(_) | Bound::Psnr(_))
    }

    fn compress(&self, field: &Field, bound: Bound) -> Result<Vec<u8>, CompressError> {
        self.compress_with_stats(field, bound).map(|(stream, _)| stream)
    }

    fn decompress(&self, stream: &[u8]) -> Result<Field, CompressError> {
        self.decompress_with_stats(stream).map(|(field, _)| field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_field(dims: [usize; 3]) -> Field {
        Field::from_fn(dims, |x, y, z| {
            (x as f64 * 0.3).sin() * 20.0 + (y as f64 * 0.2).cos() * 10.0 + z as f64 * 0.5
        })
    }

    fn raw_sperr() -> Sperr {
        Sperr::new(SperrConfig {
            chunk_dims: [16, 16, 16],
            lossless: false,
            ..SperrConfig::default()
        })
    }

    #[test]
    fn v1_stream_decodes_back_compat() {
        // Re-emit a freshly compressed stream in the legacy v1 layout and
        // check the reader still accepts it, byte-identically.
        let field = test_field([16, 16, 16]);
        let sperr = raw_sperr();
        let v2 = sperr.compress(&field, Bound::Pwe(1e-3)).unwrap();
        let parsed = read_container(&v2[1..]).unwrap();
        let offsets = chunk_offsets(&parsed.entries, parsed.payload_start);
        let chunks: Vec<ChunkEncoding> = parsed
            .entries
            .iter()
            .zip(&offsets)
            .map(|(e, &s)| ChunkEncoding {
                speck_stream: v2[1 + s..1 + s + e.speck_len].to_vec(),
                outlier_stream:
                    v2[1 + s + e.speck_len..1 + s + e.speck_len + e.outlier_len].to_vec(),
                q: e.q,
                num_planes: e.num_planes,
                max_n: e.max_n,
                num_outliers: e.num_outliers,
                speck_bits: e.speck_len * 8,
                outlier_bits: e.outlier_len * 8,
                times: Default::default(),
                coeff_sq_error: 0.0,
                max_err: f64::NAN,
            })
            .collect();
        let v1 = crate::container::write_container_v1(&parsed.header, &chunks);
        let mut legacy = vec![OUTER_RAW];
        legacy.extend_from_slice(&v1);
        assert_eq!(
            sperr.decompress(&legacy).unwrap().data,
            sperr.decompress(&v2).unwrap().data
        );
        assert_eq!(sperr.inspect(&legacy).unwrap().version, 1);
        let report = sperr.verify(&legacy).unwrap();
        assert!(!report.checksummed);
        assert!(report.is_ok());
    }

    #[test]
    fn resilient_decode_isolates_damaged_chunk() {
        // Two chunks; flip a byte inside the second chunk's payload. The
        // strict decoder must reject the stream, verify() must name the
        // chunk, and the resilient decoder must return chunk 0
        // bit-identical with chunk 1 zero-filled.
        let field = test_field([32, 16, 16]);
        let sperr = raw_sperr();
        let stream = sperr.compress(&field, Bound::Pwe(1e-3)).unwrap();
        let info = sperr.inspect(&stream).unwrap();
        assert_eq!(info.n_chunks, 2);
        let clean = sperr.decompress(&stream).unwrap();

        let mut bad = stream.clone();
        let target = 1 + info.payload_offset + info.chunk_payload_sizes[0] + 2;
        bad[target] ^= 0xFF;

        assert!(matches!(sperr.decompress(&bad), Err(CompressError::Corrupt(_))));
        assert_eq!(sperr.verify(&bad).unwrap().corrupt_chunks, vec![1]);

        let (rec, report) = sperr.decompress_resilient(&bad).unwrap();
        assert_eq!(report.statuses[0], ChunkStatus::Ok);
        assert_eq!(report.statuses[1], ChunkStatus::ChecksumMismatch);
        assert_eq!(report.failed_chunks(), vec![1]);
        assert!(!report.all_ok());
        // Chunk 0 spans x in 0..16; chunk 1 spans x in 16..32.
        for z in 0..16 {
            for y in 0..16 {
                for x in 0..32 {
                    let i = x + 32 * (y + 16 * z);
                    if x < 16 {
                        assert_eq!(rec.data[i], clean.data[i], "healthy chunk altered at {i}");
                    } else {
                        assert_eq!(rec.data[i], 0.0, "damaged chunk not neutral at {i}");
                    }
                }
            }
        }
        // An undamaged stream reports all chunks Ok and matches strict.
        let (rec2, report2) = sperr.decompress_resilient(&stream).unwrap();
        assert!(report2.all_ok());
        assert_eq!(rec2.data, clean.data);
    }

    #[test]
    fn stream_bytes_identical_across_thread_counts() {
        // The acceptance bar for the parallel overhaul: the container bytes
        // must not depend on the thread count, for multi-chunk volumes
        // (outer parallelism) and single-chunk volumes (intra-chunk
        // parallelism) alike, in every mode.
        for (dims, bound) in [
            ([32usize, 16, 16], Bound::Pwe(1e-3)), // 2 chunks
            ([20, 20, 20], Bound::Pwe(1e-3)),      // 1 chunk: intra-chunk path
            ([20, 20, 20], Bound::Bpp(2.0)),
            ([20, 20, 20], Bound::Psnr(60.0)),
        ] {
            let field = test_field(dims);
            let streams: Vec<Vec<u8>> = [1usize, 2, 4, 8]
                .iter()
                .map(|&t| {
                    Sperr::new(SperrConfig {
                        chunk_dims: [16, 16, 16],
                        lossless: false,
                        num_threads: t,
                        ..SperrConfig::default()
                    })
                    .compress(&field, bound)
                    .unwrap()
                })
                .collect();
            for (i, s) in streams.iter().enumerate().skip(1) {
                assert_eq!(&streams[0], s, "threads=1 vs threads={}", [1, 2, 4, 8][i]);
            }
            // Decompression is also thread-count independent.
            let rec1 = Sperr::new(SperrConfig { num_threads: 1, ..SperrConfig::default() })
                .decompress(&streams[0])
                .unwrap();
            let rec8 = Sperr::new(SperrConfig { num_threads: 8, ..SperrConfig::default() })
                .decompress(&streams[0])
                .unwrap();
            assert_eq!(rec1.data, rec8.data);
        }
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = SperrConfig::default();
        assert_eq!(cfg.chunk_dims, [256, 256, 256]); // §V-B default
        assert!((cfg.q_factor - 1.5).abs() < 1e-12); // §IV-D choice
        assert_eq!(cfg.kernel, Kernel::Cdf97);
        assert!(cfg.lossless); // §V: ZSTD stage on by default
        assert_eq!(cfg.container_version, 3); // indexed container
    }

    #[test]
    fn v3_index_recorded_and_pwe_max_err_exact() {
        // The default writer emits an indexed v3 stream whose per-chunk
        // max_err is the error a full decode actually shows.
        let field = test_field([32, 16, 16]);
        let sperr = raw_sperr();
        let t = 1e-3;
        let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
        let info = sperr.inspect(&stream).unwrap();
        assert_eq!(info.version, 3);
        let index = info.chunk_index.expect("v3 stream must carry an index");
        assert_eq!(index.len(), 2);
        assert_eq!(index[0].coords, [0, 0, 0]);
        assert_eq!(index[1].coords, [1, 0, 0]);
        assert_eq!(index[0].offset, 0);
        assert_eq!(index[0].len as usize, info.chunk_payload_sizes[0]);
        assert_eq!(index[1].offset as usize, info.chunk_payload_sizes[0]);
        let rec = sperr.decompress(&stream).unwrap();
        // Per-chunk measured max error must equal the recorded one; chunk
        // 0 is x in 0..16, chunk 1 is x in 16..32.
        for (chunk, x_range) in [(0usize, 0..16usize), (1, 16..32)] {
            let mut measured = 0.0f64;
            for z in 0..16 {
                for y in 0..16 {
                    for x in x_range.clone() {
                        let i = x + 32 * (y + 16 * z);
                        measured = measured.max((rec.data[i] - field.data[i]).abs());
                    }
                }
            }
            assert_eq!(index[chunk].max_err, measured, "chunk {chunk}");
            assert!(index[chunk].max_err <= t);
        }
    }

    #[test]
    fn decode_region_seeks_v3_and_scans_legacy() {
        // The same bbox query must produce identical bytes from a v3
        // stream (index seek), its v2 downgrade and its v1 downgrade
        // (both full-scan fallback), with used_index reporting the path.
        let field = test_field([40, 24, 16]);
        let sperr = raw_sperr();
        let v3 = sperr.compress(&field, Bound::Pwe(1e-3)).unwrap();
        let v2 = sperr.downgrade_to_v2(&v3).unwrap();
        let v1 = sperr.downgrade_to_v1(&v3).unwrap();
        assert_eq!(sperr.inspect(&v2).unwrap().version, 2);
        assert!(sperr.inspect(&v2).unwrap().chunk_index.is_none());
        let (lo, hi) = ([7usize, 3, 2], [25usize, 20, 13]);
        let (r3, rep3) = sperr.decode_region(&v3, lo, hi).unwrap();
        let (r2, rep2) = sperr.decode_region(&v2, lo, hi).unwrap();
        let (r1, rep1) = sperr.decode_region(&v1, lo, hi).unwrap();
        assert!(rep3.used_index);
        assert!(!rep2.used_index);
        assert!(!rep1.used_index);
        assert!(rep3.all_ok() && rep2.all_ok() && rep1.all_ok());
        assert_eq!(r3.data, r2.data);
        assert_eq!(r3.data, r1.data);
        // Bit-identical to the bbox slice of a full decompress.
        let full = sperr.decompress(&v3).unwrap();
        let rdims = [hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]];
        assert_eq!(r3.dims, rdims);
        for z in 0..rdims[2] {
            for y in 0..rdims[1] {
                for x in 0..rdims[0] {
                    let src = (x + lo[0]) + 40 * ((y + lo[1]) + 24 * (z + lo[2]));
                    let dst = x + rdims[0] * (y + rdims[1] * z);
                    assert_eq!(full.data[src].to_bits(), r3.data[dst].to_bits());
                }
            }
        }
        // Only the chunks the bbox touches get decoded.
        assert!(rep3.chunk_ids.len() < sperr.chunk_count([40, 24, 16]));
    }

    #[test]
    fn decode_region_contains_damage_to_touched_chunks() {
        // Damage inside the region: the damaged chunk's intersection is
        // zero-filled and reported; healthy chunks still decode. Damage
        // *outside* the region is invisible to the query.
        let field = test_field([32, 16, 16]);
        let sperr = raw_sperr();
        let stream = sperr.compress(&field, Bound::Pwe(1e-3)).unwrap();
        let info = sperr.inspect(&stream).unwrap();
        let mut bad = stream.clone();
        // Corrupt chunk 1 (x in 16..32).
        bad[1 + info.payload_offset + info.chunk_payload_sizes[0] + 2] ^= 0xFF;

        // Query only chunk 0: unaffected, and strict wrapper succeeds.
        let (r, rep) = sperr.decode_region(&bad, [0, 0, 0], [16, 16, 16]).unwrap();
        assert!(rep.all_ok());
        assert_eq!(rep.chunk_ids, vec![0]);
        assert_eq!(
            r.data,
            sperr.decompress_region(&stream, [0, 0, 0], [16, 16, 16]).unwrap().data
        );
        assert!(sperr.decompress_region(&bad, [0, 0, 0], [16, 16, 16]).is_ok());

        // Query spanning both: chunk 1's slice zero-filled + reported,
        // strict wrapper errors.
        let (r, rep) = sperr.decode_region(&bad, [12, 0, 0], [20, 16, 16]).unwrap();
        assert_eq!(rep.chunk_ids, vec![0, 1]);
        assert_eq!(rep.statuses[0], ChunkStatus::Ok);
        assert_eq!(rep.statuses[1], ChunkStatus::ChecksumMismatch);
        for z in 0..16 {
            for y in 0..16 {
                for x in 16..20 {
                    assert_eq!(r.data[(x - 12) + 8 * (y + 16 * z)], 0.0);
                }
            }
        }
        assert!(matches!(
            sperr.decompress_region(&bad, [12, 0, 0], [20, 16, 16]),
            Err(CompressError::Corrupt(_))
        ));
    }

    #[test]
    fn decode_at_bpp_matches_transcode_then_decompress() {
        // The in-place preview must be bit-identical to materializing the
        // transcoded stream and decoding it — same budget arithmetic, same
        // truncated decode.
        let field = test_field([32, 20, 16]);
        let sperr = raw_sperr();
        let stream = sperr.compress(&field, Bound::Pwe(1e-4)).unwrap();
        for bpp in [0.25, 1.0, 4.0] {
            let preview = sperr.decode_at_bpp(&stream, bpp).unwrap();
            let transcoded = sperr.transcode_to_bpp(&stream, bpp).unwrap();
            let reference = sperr.decompress(&transcoded).unwrap();
            assert_eq!(preview.dims, reference.dims);
            let identical = preview
                .data
                .iter()
                .zip(&reference.data)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(identical, "preview at {bpp} bpp diverges from transcode");
        }
        // Unlimited budgets reproduce the outlier-free reconstruction of
        // every chunk without error — truncation is never "corruption".
        let info = sperr.inspect(&stream).unwrap();
        let full = sperr.decode_at_budgets(&stream, &vec![usize::MAX; info.n_chunks]).unwrap();
        assert_eq!(full.dims, field.dims);
    }

    #[test]
    fn downgrade_to_v2_round_trips() {
        let field = test_field([24, 16, 16]);
        for lossless in [false, true] {
            let sperr = Sperr::new(SperrConfig {
                chunk_dims: [16, 16, 16],
                lossless,
                ..SperrConfig::default()
            });
            let v3 = sperr.compress(&field, Bound::Pwe(1e-3)).unwrap();
            let v2 = sperr.downgrade_to_v2(&v3).unwrap();
            assert_eq!(sperr.inspect(&v2).unwrap().version, 2);
            assert_eq!(sperr.decompress(&v2).unwrap().data, sperr.decompress(&v3).unwrap().data);
            // A v2-configured compressor produces that exact stream.
            let direct = Sperr::new(SperrConfig {
                chunk_dims: [16, 16, 16],
                lossless,
                container_version: 2,
                ..SperrConfig::default()
            })
            .compress(&field, Bound::Pwe(1e-3))
            .unwrap();
            assert_eq!(v2, direct, "downgrade differs from a native v2 encode");
        }
    }

    fn test_field_f32(dims: [usize; 3]) -> FieldOf<f32> {
        FieldOf::<f32>::from_fn(dims, |x, y, z| {
            (x as f64 * 0.3).sin() * 20.0 + (y as f64 * 0.2).cos() * 10.0 + z as f64 * 0.5
        })
    }

    #[test]
    fn f32_native_roundtrip_meets_pwe_bound() {
        let field = test_field_f32([32, 16, 16]);
        let sperr = raw_sperr();
        let t = 1e-3;
        let stream = sperr.compress_f32(&field, Bound::Pwe(t)).unwrap();
        let info = sperr.inspect(&stream).unwrap();
        assert_eq!(info.precision, Precision::Single);
        assert!(info.native_f32);

        let rec = sperr.decompress_f32(&stream).unwrap();
        assert_eq!(rec.dims, field.dims);
        assert_eq!(rec.precision, Precision::Single);
        // f32 arithmetic costs a few ulps on top of the nominal bound; the
        // slack is proportional to tolerance and magnitude (~30 max here).
        let slack = t * 1e-5 + 32.0 * 1e-5;
        for (a, b) in field.data.iter().zip(&rec.data) {
            assert!(
                (a - b).abs() as f64 <= t + slack,
                "PWE violated: {a} vs {b} (t = {t})"
            );
        }
    }

    #[test]
    fn f32_stream_decompresses_to_exact_widening() {
        // decompress() on a tag-2 stream must equal decompress_f32()
        // widened — the f64 surface never re-runs the math at f64.
        let field = test_field_f32([20, 20, 20]);
        let sperr = raw_sperr();
        let stream = sperr.compress_f32(&field, Bound::Pwe(1e-3)).unwrap();
        let narrow = sperr.decompress_f32(&stream).unwrap();
        let wide = sperr.decompress(&stream).unwrap();
        assert_eq!(wide.precision, Precision::Single);
        assert_eq!(wide.data.len(), narrow.data.len());
        for (w, n) in wide.data.iter().zip(&narrow.data) {
            assert_eq!(w.to_bits(), (*n as f64).to_bits());
        }
    }

    #[test]
    fn decompress_f32_rejects_non_native_stream() {
        let field = test_field([16, 16, 16]);
        let sperr = raw_sperr();
        let stream = sperr.compress(&field, Bound::Pwe(1e-3)).unwrap();
        assert!(matches!(
            sperr.decompress_f32(&stream),
            Err(CompressError::Invalid(_))
        ));
    }

    #[test]
    fn f32_stream_bytes_identical_across_thread_counts() {
        // Same determinism bar as the f64 path: container bytes must not
        // depend on the thread count at either sample width.
        for (dims, bound) in [
            ([32usize, 16, 16], Bound::Pwe(1e-3)), // 2 chunks
            ([20, 20, 20], Bound::Pwe(1e-3)),      // 1 chunk: intra-chunk path
            ([20, 20, 20], Bound::Bpp(2.0)),
            ([20, 20, 20], Bound::Psnr(60.0)),
        ] {
            let field = test_field_f32(dims);
            let streams: Vec<Vec<u8>> = [1usize, 2, 4, 8]
                .iter()
                .map(|&t| {
                    Sperr::new(SperrConfig {
                        chunk_dims: [16, 16, 16],
                        num_threads: t,
                        lossless: false,
                        ..SperrConfig::default()
                    })
                    .compress_f32(&field, bound)
                    .unwrap()
                })
                .collect();
            for s in &streams[1..] {
                assert_eq!(s, &streams[0], "f32 stream differs across threads ({dims:?})");
            }
            // Decode determinism too.
            let decodes: Vec<Vec<f32>> = [1usize, 2, 4, 8]
                .iter()
                .map(|&t| {
                    Sperr::new(SperrConfig {
                        chunk_dims: [16, 16, 16],
                        num_threads: t,
                        lossless: false,
                        ..SperrConfig::default()
                    })
                    .decompress_f32(&streams[0])
                    .unwrap()
                    .data
                })
                .collect();
            for d in &decodes[1..] {
                let same = d.iter().zip(&decodes[0]).all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "f32 decode differs across threads ({dims:?})");
            }
        }
    }

    #[test]
    fn f32_stream_supports_all_f64_decode_surfaces() {
        // Region decode, resilient decode, transcode and budget previews
        // all accept tag-2 streams and agree with the widened full decode.
        let field = test_field_f32([32, 20, 16]);
        let sperr = raw_sperr();
        let stream = sperr.compress_f32(&field, Bound::Pwe(1e-4)).unwrap();
        let full = sperr.decompress(&stream).unwrap();

        // Region decode matches the same slice of the full decode.
        let region = sperr.decompress_region(&stream, [4, 2, 1], [20, 18, 9]).unwrap();
        for z in 1..9 {
            for y in 2..18 {
                for x in 4..20 {
                    let fi = x + 32 * (y + 20 * z);
                    let ri = (x - 4) + 16 * ((y - 2) + 16 * (z - 1));
                    assert_eq!(full.data[fi].to_bits(), region.data[ri].to_bits());
                }
            }
        }

        // Resilient decode of an undamaged stream matches strict.
        let (res, report) = sperr.decompress_resilient(&stream).unwrap();
        assert!(report.all_ok());
        assert_eq!(res.data, full.data);

        // Transcode preserves the native-f32 tag; the preview is
        // bit-identical to transcode-then-decompress.
        for bpp in [0.5, 2.0] {
            let transcoded = sperr.transcode_to_bpp(&stream, bpp).unwrap();
            assert!(sperr.inspect(&transcoded).unwrap().native_f32);
            let preview = sperr.decode_at_bpp(&stream, bpp).unwrap();
            let reference = sperr.decompress(&transcoded).unwrap();
            let same = preview
                .data
                .iter()
                .zip(&reference.data)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "tag-2 preview at {bpp} bpp diverges from transcode");
        }
    }

    #[test]
    fn f32_lossless_postpass_roundtrips() {
        let field = test_field_f32([20, 20, 20]);
        let sperr = Sperr::new(SperrConfig {
            chunk_dims: [16, 16, 16],
            lossless: true,
            ..SperrConfig::default()
        });
        let stream = sperr.compress_f32(&field, Bound::Pwe(1e-3)).unwrap();
        assert!(sperr.inspect(&stream).unwrap().native_f32);
        let raw = Sperr::new(SperrConfig {
            chunk_dims: [16, 16, 16],
            lossless: false,
            ..SperrConfig::default()
        })
        .compress_f32(&field, Bound::Pwe(1e-3))
        .unwrap();
        assert_eq!(
            sperr.decompress_f32(&stream).unwrap().data,
            sperr.decompress_f32(&raw).unwrap().data
        );
    }
}
