//! Property tests: the PWE guarantee of the outlier coder must hold for
//! arbitrary outlier sets — exact positions, corrections within t/2.

use proptest::prelude::*;
use sperr_outlier::{decode, encode, Outlier};

/// Arbitrary outlier sets: unique positions within a random domain, signed
/// magnitudes strictly above a random tolerance.
fn outlier_set() -> impl Strategy<Value = (Vec<Outlier>, usize, f64)> {
    (1usize..5000, 1e-6f64..10.0).prop_flat_map(|(n, t)| {
        let positions = prop::collection::btree_set(0..n, 0..50.min(n));
        let t2 = t;
        (positions, Just(n), Just(t2)).prop_flat_map(move |(pos_set, n, t)| {
            let count = pos_set.len();
            let positions: Vec<usize> = pos_set.into_iter().collect();
            (
                prop::collection::vec((1.0001f64..1e6, any::<bool>()), count..=count),
                Just(positions),
                Just(n),
                Just(t),
            )
                .prop_map(move |(mags, positions, n, t)| {
                    let outliers: Vec<Outlier> = positions
                        .iter()
                        .zip(&mags)
                        .map(|(&pos, &(factor, neg))| Outlier {
                            pos,
                            corr: t * factor * if neg { -1.0 } else { 1.0 },
                        })
                        .collect();
                    (outliers, n, t)
                })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip_guarantees_pwe((outliers, n, t) in outlier_set()) {
        let enc = encode(&outliers, n, t);
        let mut dec = decode(&enc.stream, n, t, enc.max_n).unwrap();
        prop_assert_eq!(dec.len(), outliers.len());
        dec.sort_by_key(|o| o.pos);
        let mut orig = outliers.clone();
        orig.sort_by_key(|o| o.pos);
        for (d, o) in dec.iter().zip(&orig) {
            prop_assert_eq!(d.pos, o.pos);
            let err = (d.corr - o.corr).abs();
            prop_assert!(err <= t / 2.0 * (1.0 + 1e-9),
                         "pos {} corr {} decoded {} err {} > t/2 {}",
                         o.pos, o.corr, d.corr, err, t / 2.0);
        }
    }

    #[test]
    fn stream_is_deterministic((outliers, n, t) in outlier_set()) {
        let a = encode(&outliers, n, t);
        let b = encode(&outliers, n, t);
        prop_assert_eq!(a.stream, b.stream);
        prop_assert_eq!(a.max_n, b.max_n);
    }

    #[test]
    fn truncation_at_every_byte_boundary_never_panics((outliers, n, t) in outlier_set()) {
        // Exhaustive sweep: every proper prefix decodes to a valid subset
        // (the coder is embedded) and never panics.
        let enc = encode(&outliers, n, t);
        for cut in 0..=enc.stream.len() {
            let dec = decode(&enc.stream[..cut], n, t, enc.max_n);
            match dec {
                Ok(subset) => {
                    prop_assert!(subset.len() <= outliers.len());
                    for d in &subset {
                        prop_assert!(d.pos < n);
                    }
                }
                Err(_) => prop_assert!(false, "embedded prefix rejected at {}", cut),
            }
        }
    }

    #[test]
    fn corrupted_streams_never_panic((outliers, n, t) in outlier_set(),
                                     pos_seed in any::<u64>(),
                                     max_n in 0u8..=64) {
        // Bit flips and adversarial max_n: any Result is fine, panics are not.
        let enc = encode(&outliers, n, t);
        if !enc.stream.is_empty() {
            let mut bad = enc.stream.clone();
            let pos = (pos_seed as usize) % bad.len();
            bad[pos] ^= 1 << (pos_seed % 8);
            let _ = decode(&bad, n, t, enc.max_n);
        }
        let _ = decode(&enc.stream, n, t, max_n);
    }

    #[test]
    fn truncation_is_graceful((outliers, n, t) in outlier_set(), frac in 0.0f64..1.0) {
        let enc = encode(&outliers, n, t);
        let cut = ((enc.stream.len() as f64) * frac) as usize;
        let dec = decode(&enc.stream[..cut], n, t, enc.max_n).unwrap();
        // Partial decode yields a subset of positions, all valid.
        for d in &dec {
            prop_assert!(d.pos < n);
        }
        prop_assert!(dec.len() <= outliers.len());
    }
}
