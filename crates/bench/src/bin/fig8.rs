//! Fig. 8: rate-distortion comparison of all five compressors on nine
//! fields. The paper plots accuracy gain (y) against achieved bitrate
//! (x, log scale) as idx sweeps from 0 toward machine epsilon. Expected
//! shape: curves rise at low rates, then plateau; SPERR leads at
//! mid-to-high rates (> 2 BPP) and stays competitive at low rates.
//!
//! Per the paper: TTHRESH receives a PSNR target `20·log10(2)·idx` and is
//! skipped on QMCPACK; MGARD's series terminates once it exceeds the
//! tolerance ("the offending test is terminated"); idx sweeps to ~25–35
//! for single-precision fields and ~50–60 for double.

use sperr_compress_api::{Bound, Field, LossyCompressor, Precision};
use sperr_core::{Sperr, SperrConfig};
use sperr_datagen::SyntheticField;

fn measure(
    comp: &dyn LossyCompressor,
    field: &Field,
    bound: Bound,
) -> Option<(f64, f64, f64, f64)> {
    let stream = comp.compress(field, bound).ok()?;
    let rec = comp.decompress(&stream).ok()?;
    let bpp = stream.len() as f64 * 8.0 / field.len() as f64;
    let psnr = sperr_metrics::psnr(&field.data, &rec.data);
    let gain = sperr_metrics::accuracy_gain_of(&field.data, &rec.data, stream.len());
    let max_e = sperr_metrics::max_pwe(&field.data, &rec.data);
    Some((bpp, psnr, gain, max_e))
}

fn main() {
    sperr_bench::banner(
        "Fig. 8 — rate-distortion curves (accuracy gain vs BPP) for 5 compressors",
        "Figure 8 (nine data fields, idx sweep)",
    );
    let sperr = Sperr::new(SperrConfig::default());
    let sz = sperr_sz_like::SzLike::default();
    let zfp = sperr_zfp_like::ZfpLike::default();
    let tthresh = sperr_tthresh_like::TthreshLike;
    let mgard = sperr_mgard_like::MgardLike;

    println!("field,compressor,idx,bpp,psnr_db,accuracy_gain,max_pwe,tolerance");
    for f in SyntheticField::TABLE2_FIELDS {
        let field = sperr_bench::bench_field(f);
        let max_idx = match field.precision {
            Precision::Single => 27,
            Precision::Double => 48,
        };
        let mut mgard_dead = false;
        let mut idx = 3u32;
        while idx <= max_idx {
            let t = field.tolerance_for_idx(idx);
            for (name, comp, bound) in [
                ("SPERR", &sperr as &dyn LossyCompressor, Bound::Pwe(t)),
                ("SZ-like", &sz, Bound::Pwe(t)),
                ("ZFP-like", &zfp, Bound::Pwe(t)),
                (
                    "TTHRESH-like",
                    &tthresh,
                    Bound::Psnr(sperr_metrics::psnr_target_for_idx(idx)),
                ),
                ("MGARD-like", &mgard, Bound::Pwe(t)),
            ] {
                if name == "TTHRESH-like" && f == SyntheticField::Qmcpack {
                    continue; // paper: TTHRESH did not finish on QMCPACK
                }
                if name == "MGARD-like" && mgard_dead {
                    continue;
                }
                if let Some((bpp, psnr, gain, max_e)) = measure(comp, &field, bound) {
                    // Paper protocol: terminate MGARD's series when it
                    // stops honouring the tolerance.
                    if name == "MGARD-like" && max_e > t {
                        mgard_dead = true;
                        continue;
                    }
                    println!(
                        "{},{name},{idx},{bpp:.4},{psnr:.2},{gain:.3},{max_e:.4e},{t:.4e}",
                        f.abbrev(idx)
                    );
                }
            }
            idx += 3;
        }
    }
}
