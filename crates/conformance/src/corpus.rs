//! The conformance corpus: which codecs, which inputs, which bounds, and
//! what error guarantee each codec *documents* for a bound.
//!
//! Everything here is deterministic — the golden-stream layer regenerates
//! the exact same inputs at check time as at regen time, so only the
//! codecs' behaviour is under test, never the corpus itself.

use sperr_compress_api::{Bound, Field, LossyCompressor};
use sperr_core::{Sperr, SperrConfig};
use sperr_datagen::SyntheticField;
use sperr_mgard_like::MgardLike;
use sperr_sz_like::SzLike;
use sperr_tthresh_like::TthreshLike;
use sperr_zfp_like::ZfpLike;

/// The five codecs of the paper's evaluation (§VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecId {
    /// SPERR itself (chunked; golden config uses 16³ chunks so multi-chunk
    /// containers are part of the corpus).
    Sperr,
    /// The ZFP-like fixed-accuracy/fixed-rate baseline.
    ZfpLike,
    /// The SZ3-like interpolation-predictor baseline.
    SzLike,
    /// The TTHRESH-like Tucker-decomposition baseline (PSNR-bounded only).
    TthreshLike,
    /// The MGARD-like multilevel-multilinear baseline.
    MgardLike,
}

impl CodecId {
    /// All five codecs, in the paper's order.
    pub const ALL: [CodecId; 5] = [
        CodecId::Sperr,
        CodecId::ZfpLike,
        CodecId::SzLike,
        CodecId::TthreshLike,
        CodecId::MgardLike,
    ];

    /// Stable identifier used in manifest lines and reproducer dumps.
    pub fn tag(self) -> &'static str {
        match self {
            CodecId::Sperr => "sperr",
            CodecId::ZfpLike => "zfp-like",
            CodecId::SzLike => "sz-like",
            CodecId::TthreshLike => "tthresh-like",
            CodecId::MgardLike => "mgard-like",
        }
    }

    /// Parses a [`Self::tag`] back (manifest loading).
    pub fn from_tag(tag: &str) -> Option<CodecId> {
        CodecId::ALL.into_iter().find(|c| c.tag() == tag)
    }

    /// Instantiates the codec behind the shared [`LossyCompressor`]
    /// interface. SPERR gets a fixed conformance configuration (16³
    /// chunks, lossless pass on, single thread — thread-count bit
    /// identity is the oracles' job, so goldens pin the 1-thread bytes).
    /// The container version is pinned to 2: the 64 golden streams
    /// predate the v3 chunk index and must stay byte-identical; v3 gets
    /// its own dedicated fixture instead.
    pub fn build(self) -> Box<dyn LossyCompressor> {
        match self {
            CodecId::Sperr => Box::new(Sperr::new(SperrConfig {
                chunk_dims: [16, 16, 16],
                num_threads: 1,
                container_version: 2,
                ..SperrConfig::default()
            })),
            CodecId::ZfpLike => Box::new(ZfpLike { num_threads: 1 }),
            CodecId::SzLike => Box::new(SzLike::default()),
            CodecId::TthreshLike => Box::new(TthreshLike),
            CodecId::MgardLike => Box::new(MgardLike),
        }
    }
}

/// The error guarantee a codec documents for a bound — what the PWE
/// campaign and the golden value checks enforce.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBudget {
    /// `max |x − x̂| ≤ limit` over every point.
    MaxAbs(f64),
    /// Achieved PSNR (dB) must be at least this target.
    MinPsnr(f64),
    /// No documented error guarantee (size-bounded modes).
    None,
}

/// Maps (codec, bound, dims) to the codec's *documented* guarantee,
/// mirroring the capability matrix of §VI-C:
///
/// * SPERR, ZFP-like, SZ-like bound the point-wise error at exactly `t`.
/// * MGARD-like documents only the hard `(L+1)·t/2` stacking bound
///   ([`MgardLike::hard_error_bound`]) — the paper's "when t is tight
///   MGARD cannot bound the error tolerance" observation.
/// * TTHRESH-like and SPERR's PSNR mode guarantee the average-error
///   target.
/// * Size-bounded (BPP) modes promise nothing about error.
pub fn documented_budget(codec: CodecId, bound: Bound, dims: [usize; 3]) -> ErrorBudget {
    match (codec, bound) {
        (CodecId::Sperr | CodecId::ZfpLike | CodecId::SzLike, Bound::Pwe(t)) => {
            ErrorBudget::MaxAbs(t)
        }
        (CodecId::MgardLike, Bound::Pwe(t)) => {
            ErrorBudget::MaxAbs(MgardLike::hard_error_bound(dims, t))
        }
        (CodecId::Sperr | CodecId::TthreshLike, Bound::Psnr(p)) => ErrorBudget::MinPsnr(p),
        _ => ErrorBudget::None,
    }
}

/// Checks a reconstruction against a budget; `Err` carries the observed
/// violation as `(observed, allowed)`.
pub fn check_budget(
    original: &[f64],
    reconstructed: &[f64],
    budget: ErrorBudget,
) -> Result<(), (f64, f64)> {
    match budget {
        ErrorBudget::MaxAbs(limit) => {
            let observed = sperr_metrics::max_pwe(original, reconstructed);
            if observed <= limit {
                Ok(())
            } else {
                Err((observed, limit))
            }
        }
        ErrorBudget::MinPsnr(target) => {
            let observed = sperr_metrics::psnr(original, reconstructed);
            if observed >= target {
                Ok(())
            } else {
                Err((observed, target))
            }
        }
        ErrorBudget::None => Ok(()),
    }
}

/// One deterministic corpus input: a synthetic generator at fixed dims.
#[derive(Debug, Clone, Copy)]
pub struct CorpusInput {
    /// Stable identifier (manifest key prefix).
    pub id: &'static str,
    /// The synthetic-field generator (§VI-B stand-ins).
    pub gen: SyntheticField,
    /// Volume dims — the shape classes the chunked/blocked hot paths care
    /// about: 1D/2D/3D, odd, prime and power-of-two extents.
    pub dims: [usize; 3],
}

/// Seed shared by every corpus input (one seed: the corpus is a fixed
/// artifact, not a sampling experiment).
pub const CORPUS_SEED: u64 = 20230512;

impl CorpusInput {
    /// Generates the input field (deterministic).
    pub fn generate(&self) -> Field {
        self.gen.generate(self.dims, CORPUS_SEED)
    }

    /// The f32 twin of [`CorpusInput::generate`]: the same deterministic
    /// samples rounded once (nearest-even) to single precision — the
    /// input the f32-native pipeline is held to.
    pub fn generate_f32(&self) -> sperr_compress_api::FieldOf<f32> {
        self.generate().narrow_lossy()
    }
}

/// The PWE budget the f32-native SPERR path documents for tolerance `t`
/// on a field of the given `range`: the tolerance itself plus
/// single-precision round-off headroom. The wavelet/SPECK/outlier
/// pipeline at f32 accumulates rounding of order `range × ε32` per
/// lifting level; `range × 1e-5` (~84 ulps of the range) covers the
/// deepest hierarchy in the corpus with margin while staying well below
/// one tolerance decade, so the check still bites.
pub fn f32_budget(t: f64, range: f64) -> f64 {
    t * (1.0 + 1e-5) + range * 1e-5
}

/// The corpus matrix: two generators with very different compression
/// character (smooth steep-spectrum Miranda pressure vs heavy-tailed Nyx
/// density) × four dimension shapes.
pub fn corpus_inputs() -> Vec<CorpusInput> {
    let mut out = Vec::new();
    for (gname, gen) in [
        ("press", SyntheticField::MirandaPressure),
        ("nyx", SyntheticField::NyxDarkMatterDensity),
    ] {
        for (dname, dims) in [
            ("1d61", [61usize, 1, 1]),   // 1D, prime length
            ("2d29x23", [29, 23, 1]),    // 2D, prime extents
            ("3d16", [16, 16, 16]),      // 3D, power of two (single chunk)
            ("3d21x10x11", [21, 10, 11]) // 3D, odd extents (2 chunks @ 16³)
        ] {
            out.push(CorpusInput {
                id: match (gname, dname) {
                    ("press", "1d61") => "press-1d61",
                    ("press", "2d29x23") => "press-2d29x23",
                    ("press", "3d16") => "press-3d16",
                    ("press", "3d21x10x11") => "press-3d21x10x11",
                    ("nyx", "1d61") => "nyx-1d61",
                    ("nyx", "2d29x23") => "nyx-2d29x23",
                    ("nyx", "3d16") => "nyx-3d16",
                    (_, _) => "nyx-3d21x10x11",
                },
                gen,
                dims,
            });
        }
    }
    out
}

/// The bounds each codec contributes to the golden matrix for one input:
/// every mode the codec supports, at corpus-standard strengths (PWE at
/// Table I idx 15, 2 bpp, 60 dB).
pub fn golden_bounds(codec: CodecId, field: &Field) -> Vec<Bound> {
    let t = field.tolerance_for_idx(15);
    let candidates = [Bound::Pwe(t), Bound::Bpp(2.0), Bound::Psnr(60.0)];
    let c = codec.build();
    candidates.into_iter().filter(|b| c.supports(b)).collect()
}

/// Short mode tag for manifest lines and file names.
pub fn bound_tag(bound: Bound) -> &'static str {
    match bound {
        Bound::Pwe(_) => "pwe",
        Bound::Bpp(_) => "bpp",
        Bound::Psnr(_) => "psnr",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        for input in corpus_inputs() {
            let a = input.generate();
            let b = input.generate();
            assert_eq!(a.data, b.data, "{} not deterministic", input.id);
            assert!(a.range() > 0.0, "{} has zero range", input.id);
        }
    }

    #[test]
    fn f32_corpus_is_deterministic_and_budget_is_meaningful() {
        for input in corpus_inputs() {
            let a = input.generate_f32();
            let b = input.generate_f32();
            assert!(
                a.data.iter().zip(&b.data).all(|(x, y)| x.to_bits() == y.to_bits()),
                "{} f32 twin not deterministic",
                input.id
            );
        }
        // The f32 budget must be looser than t (or rounding noise would
        // fail spuriously) but tight enough to stay within the same
        // tolerance decade — otherwise the check proves nothing.
        let field = corpus_inputs()[2].generate_f32();
        let t = field.tolerance_for_idx(15);
        let allowed = f32_budget(t, field.range());
        assert!(allowed > t && allowed < 10.0 * t, "f32 budget {allowed:e} vs t {t:e}");
    }

    #[test]
    fn ids_are_unique() {
        let inputs = corpus_inputs();
        for (i, a) in inputs.iter().enumerate() {
            for b in &inputs[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
    }

    #[test]
    fn capability_matrix_matches_paper() {
        let field = Field::from_fn([8, 8, 8], |x, y, z| (x + y + z) as f64);
        let modes: Vec<(CodecId, usize)> = CodecId::ALL
            .into_iter()
            .map(|c| (c, golden_bounds(c, &field).len()))
            .collect();
        // SPERR: PWE+BPP+PSNR; ZFP: PWE+BPP; SZ/MGARD: PWE; TTHRESH: PSNR.
        assert_eq!(
            modes,
            vec![
                (CodecId::Sperr, 3),
                (CodecId::ZfpLike, 2),
                (CodecId::SzLike, 1),
                (CodecId::TthreshLike, 1),
                (CodecId::MgardLike, 1),
            ]
        );
    }

    #[test]
    fn budgets_follow_documentation() {
        let dims = [16, 16, 16];
        assert_eq!(
            documented_budget(CodecId::Sperr, Bound::Pwe(0.5), dims),
            ErrorBudget::MaxAbs(0.5)
        );
        // MGARD's hard bound is strictly looser than t on a multi-level
        // hierarchy.
        match documented_budget(CodecId::MgardLike, Bound::Pwe(0.5), dims) {
            ErrorBudget::MaxAbs(limit) => assert!(limit > 0.5),
            other => panic!("unexpected budget {other:?}"),
        }
        assert_eq!(
            documented_budget(CodecId::TthreshLike, Bound::Psnr(60.0), dims),
            ErrorBudget::MinPsnr(60.0)
        );
        assert_eq!(
            documented_budget(CodecId::Sperr, Bound::Bpp(2.0), dims),
            ErrorBudget::None
        );
    }
}
