//! The SLZ1 container decoder, kept in its own module so the whole decode
//! path can be audited for panic-freedom (see the repo's
//! `tests/panic_audit.rs`): nothing in this file may `unwrap`, `expect`,
//! `panic!` or `assert` — all failures on untrusted input surface as
//! [`DecodeError`].

use crate::{lz77, BLOCK_SIZE, MAGIC};
use sperr_bitstream::ByteReader;
use std::fmt;

/// Upper bound on the output bytes a stream may declare per input byte.
/// The LZ77 back end tops out near 207x (a 259-byte match costs at least
/// 10 bits); anything above this factor cannot be a genuine SLZ1 stream
/// and is rejected before any allocation.
const MAX_EXPANSION: usize = 1024;

/// Cap on the up-front reservation for the output buffer; growth beyond
/// this is paid for by actual decoded blocks, so a huge declared raw
/// length cannot allocate memory the stream does not back.
const MAX_PREALLOC: usize = 16 * 1024 * 1024;

/// Typed decoder-side failure. Untrusted streams must never panic the
/// decoder; every structural problem maps to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended before the declared structure was complete.
    Truncated(&'static str),
    /// The stream or its declared parameters are structurally invalid.
    Corrupt(&'static str),
    /// A declared size exceeds what the decoder is willing to allocate.
    LimitExceeded(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated(msg) => write!(f, "truncated SLZ1 stream: {msg}"),
            DecodeError::Corrupt(msg) => write!(f, "corrupt SLZ1 stream: {msg}"),
            DecodeError::LimitExceeded(msg) => write!(f, "SLZ1 decode limit exceeded: {msg}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<sperr_bitstream::Error> for DecodeError {
    fn from(e: sperr_bitstream::Error) -> Self {
        match e {
            sperr_bitstream::Error::UnexpectedEof => {
                DecodeError::Truncated("unexpected end of stream")
            }
            sperr_bitstream::Error::Corrupt(msg) => DecodeError::Corrupt(msg),
        }
    }
}

impl From<DecodeError> for sperr_compress_api::CompressError {
    fn from(e: DecodeError) -> Self {
        use sperr_compress_api::CompressError;
        match e {
            DecodeError::Truncated(_) => CompressError::Truncated(e.to_string()),
            DecodeError::Corrupt(_) => CompressError::Corrupt(e.to_string()),
            DecodeError::LimitExceeded(_) => CompressError::LimitExceeded(e.to_string()),
        }
    }
}

/// Decompresses a stream produced by [`crate::compress`]. Corrupt or
/// truncated input returns a typed error; the declared raw length is
/// treated as untrusted and never allocated blindly.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, DecodeError> {
    let _span = sperr_telemetry::span!("lossless.decompress", data.len());
    let mut r = ByteReader::new(data);
    if r.get_bytes(4)? != MAGIC {
        return Err(DecodeError::Corrupt("bad SLZ1 magic"));
    }
    let raw_len_u64 = r.get_u64()?;
    if raw_len_u64 > (data.len().saturating_mul(MAX_EXPANSION).saturating_add(BLOCK_SIZE)) as u64
    {
        return Err(DecodeError::LimitExceeded("declared raw length implausibly large"));
    }
    let raw_len = raw_len_u64 as usize;
    let mut out = Vec::with_capacity(raw_len.min(MAX_PREALLOC));
    loop {
        let flags = r.get_u8()?;
        let block_len = r.get_u32()? as usize;
        if block_len > BLOCK_SIZE {
            return Err(DecodeError::Corrupt("block exceeds maximum block size"));
        }
        if out.len() + block_len > raw_len {
            return Err(DecodeError::Corrupt("blocks overrun declared raw length"));
        }
        if flags & 0b01 != 0 {
            let payload_len = r.get_u32()? as usize;
            let payload = r.get_bytes(payload_len)?;
            let block = lz77::decompress_block(payload, block_len)?;
            out.extend_from_slice(&block);
        } else {
            out.extend_from_slice(r.get_bytes(block_len)?);
        }
        if flags & 0b10 != 0 {
            break;
        }
        if r.is_empty() {
            return Err(DecodeError::Truncated("missing last-block flag"));
        }
    }
    if out.len() != raw_len {
        return Err(DecodeError::Corrupt("raw length mismatch"));
    }
    Ok(out)
}
