//! Raw binary field I/O: little-endian f32/f64 arrays, the format the
//! SDRBench files (and upstream SPERR's CLI) use.

use crate::args::ScalarType;
use sperr_compress_api::{Field, Precision};
use std::fs;
use std::io;
use std::path::Path;

/// Reads a raw little-endian scalar file into a [`Field`] of the given
/// dims; errors if the file size does not match.
pub fn read_field(path: &Path, dims: [usize; 3], ty: ScalarType) -> io::Result<Field> {
    let bytes = fs::read(path)?;
    let n: usize = dims.iter().product();
    let elem = match ty {
        ScalarType::F32 => 4,
        ScalarType::F64 => 8,
    };
    if bytes.len() != n * elem {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{} holds {} bytes but dims {:?} as {:?} need {}",
                path.display(),
                bytes.len(),
                dims,
                ty,
                n * elem
            ),
        ));
    }
    let mut data = Vec::with_capacity(n);
    match ty {
        ScalarType::F32 => {
            for c in bytes.chunks_exact(4) {
                data.push(f32::from_le_bytes(c.try_into().unwrap()) as f64);
            }
        }
        ScalarType::F64 => {
            for c in bytes.chunks_exact(8) {
                data.push(f64::from_le_bytes(c.try_into().unwrap()));
            }
        }
    }
    let precision = match ty {
        ScalarType::F32 => Precision::Single,
        ScalarType::F64 => Precision::Double,
    };
    Ok(Field::new(dims, data).with_precision(precision))
}

/// Writes a [`Field`] as raw little-endian scalars.
pub fn write_field(path: &Path, field: &Field, ty: ScalarType) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(field.len() * 8);
    match ty {
        ScalarType::F32 => {
            for &v in &field.data {
                bytes.extend_from_slice(&(v as f32).to_le_bytes());
            }
        }
        ScalarType::F64 => {
            for &v in &field.data {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    if path.as_os_str() == "-" {
        use io::Write;
        let mut out = io::stdout().lock();
        out.write_all(&bytes)?;
        return out.flush();
    }
    fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64_and_f32() {
        let dir = std::env::temp_dir().join("sperr_cli_rawio_test");
        fs::create_dir_all(&dir).unwrap();
        let field = Field::from_fn([3, 2, 2], |x, y, z| x as f64 + 0.5 * y as f64 - z as f64);

        let p64 = dir.join("a.f64");
        write_field(&p64, &field, ScalarType::F64).unwrap();
        let back = read_field(&p64, [3, 2, 2], ScalarType::F64).unwrap();
        assert_eq!(back.data, field.data);
        assert_eq!(back.precision, Precision::Double);

        let p32 = dir.join("a.f32");
        write_field(&p32, &field, ScalarType::F32).unwrap();
        let back = read_field(&p32, [3, 2, 2], ScalarType::F32).unwrap();
        for (a, b) in field.data.iter().zip(&back.data) {
            assert!((a - b).abs() < 1e-6);
        }
        assert_eq!(back.precision, Precision::Single);

        // wrong dims -> clean error
        assert!(read_field(&p64, [4, 2, 2], ScalarType::F64).is_err());
        fs::remove_dir_all(&dir).ok();
    }
}
