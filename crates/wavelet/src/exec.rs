//! Execution abstraction for the transform drivers.
//!
//! The multilevel transform is a sequence of axis passes; within one pass
//! every line (or panel of lines) is independent. [`LineExecutor`] lets a
//! caller supply a parallel runtime (e.g. `sperr-core`'s worker pool)
//! without this crate depending on one: the driver describes the pass as
//! `n_jobs` independent jobs and the executor decides how to run them.
//! [`Serial`] is the built-in single-threaded executor.
//!
//! Bit-exactness: every job performs the same per-line arithmetic as the
//! serial reference path, and jobs touch disjoint samples, so the output
//! is identical regardless of executor, worker count or scheduling order
//! (enforced by the equivalence proptests).

use sperr_simd::Float;
use std::cell::UnsafeCell;

/// Runs batches of independent jobs, possibly in parallel.
///
/// # Contract
///
/// * `run(n_jobs, f)` must call `f(job, worker)` exactly once for every
///   `job in 0..n_jobs`, with `worker < width()`, and must not return
///   before every call has completed.
/// * Two jobs executing *concurrently* must be passed distinct `worker`
///   values — `worker` indexes per-worker scratch buffers.
pub trait LineExecutor: Sync {
    /// Upper bound (exclusive) on the `worker` indices passed to jobs.
    fn width(&self) -> usize {
        1
    }

    /// Runs `f(job, worker)` for every `job in 0..n_jobs`.
    fn run(&self, n_jobs: usize, f: &(dyn Fn(usize, usize) + Sync));
}

/// The trivial executor: every job runs on the calling thread as worker 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct Serial;

impl LineExecutor for Serial {
    fn run(&self, n_jobs: usize, f: &(dyn Fn(usize, usize) + Sync)) {
        for job in 0..n_jobs {
            f(job, 0);
        }
    }
}

/// Adversarial executors for differential testing.
///
/// The blocked transform drivers promise byte-identical output under any
/// legal [`LineExecutor`] — any scheduling order, any worker keying. These
/// executors deliberately stress both axes of that contract without real
/// threads, so the check is deterministic. They are shared by this crate's
/// proptests, the `sperr-conformance` oracles and future fuzz targets.
pub mod stress {
    use super::LineExecutor;

    /// Runs jobs in reverse order — still serial, still worker 0. Output
    /// must not depend on job scheduling order.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct ReverseOrder;

    impl LineExecutor for ReverseOrder {
        fn run(&self, n_jobs: usize, f: &(dyn Fn(usize, usize) + Sync)) {
            for job in (0..n_jobs).rev() {
                f(job, 0);
            }
        }
    }

    /// Serial executor that cycles jobs over `width` worker slots —
    /// exercises per-worker scratch keying without real threads.
    #[derive(Debug, Clone, Copy)]
    pub struct StripedWorkers(pub usize);

    impl LineExecutor for StripedWorkers {
        fn width(&self) -> usize {
            self.0.max(1)
        }
        fn run(&self, n_jobs: usize, f: &(dyn Fn(usize, usize) + Sync)) {
            for job in 0..n_jobs {
                f(job, job % self.0.max(1));
            }
        }
    }
}

/// One value per worker slot, accessed mutably through a shared reference.
///
/// Safety rests on the [`LineExecutor`] contract: concurrent jobs see
/// distinct `worker` indices, so `get(worker)` never hands out two live
/// `&mut` to the same slot.
pub(crate) struct PerWorker<T> {
    slots: Box<[UnsafeCell<T>]>,
}

// SAFETY: slots are only accessed through `get`, whose caller guarantees
// (via the executor contract) that each index is used by one thread at a
// time.
unsafe impl<T: Send> Sync for PerWorker<T> {}

impl<T> PerWorker<T> {
    pub(crate) fn new(n: usize, mut init: impl FnMut() -> T) -> Self {
        PerWorker { slots: (0..n).map(|_| UnsafeCell::new(init())).collect() }
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// # Safety
    ///
    /// No two threads may call `get` with the same `worker` concurrently,
    /// and the returned reference must not outlive the current job.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get(&self, worker: usize) -> &mut T {
        &mut *self.slots[worker].get()
    }
}

/// Number of adjacent lines gathered into one contiguous panel for the
/// strided (y/z) axis passes. A panel is `PANEL_W · n` doubles; at the
/// default 256-long lines that is 64 KiB — small enough to live in L2
/// while the gather/scatter streams through it, wide enough that every
/// byte of a fetched cache line is used (8 doubles per 64-byte line).
pub const PANEL_W: usize = 32;

/// Per-worker scratch owned by [`TransformScratch`]: one panel plus the
/// kernel's de/interleave line buffer.
pub(crate) struct WorkerScratch<T> {
    /// `PANEL_W` lines, line-major (`panel[w*n + i]` is sample `i` of
    /// panel line `w`).
    pub panel: Vec<T>,
    /// Kernel line scratch (`Kernel::forward_line`'s `scratch` argument).
    pub line: Vec<T>,
}

/// Reusable scratch for the `_with` transform drivers: per-worker panel
/// and line buffers sized for the largest axis seen so far. Create once,
/// reuse across chunks/calls — the whole point is that repeated
/// transforms allocate nothing. Generic over the sample type with the
/// historical `f64` as default, so existing call sites are unchanged.
pub struct TransformScratch<T: Float = f64> {
    pub(crate) workers: PerWorker<WorkerScratch<T>>,
    max_dim: usize,
}

impl<T: Float> Default for TransformScratch<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Float> TransformScratch<T> {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        TransformScratch { workers: PerWorker::new(0, || unreachable!()), max_dim: 0 }
    }

    /// Grows the scratch to serve `workers` concurrent jobs on axes up to
    /// `max_dim` long. Shrinking never happens — reuse keeps capacity.
    pub fn ensure(&mut self, max_dim: usize, workers: usize) {
        let workers = workers.max(1);
        if workers > self.workers.len() || max_dim > self.max_dim {
            let dim = max_dim.max(self.max_dim);
            self.workers = PerWorker::new(workers.max(self.workers.len()), || WorkerScratch {
                panel: vec![T::ZERO; PANEL_W * dim],
                line: vec![T::ZERO; dim],
            });
            self.max_dim = dim;
        }
    }

    /// Total bytes currently held across all worker buffers (memory
    /// accounting; capacity equals length because buffers only grow via
    /// whole reallocation in [`TransformScratch::ensure`]).
    pub fn bytes(&self) -> usize {
        self.workers.len() * (PANEL_W + 1) * self.max_dim * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_runs_every_job_once() {
        let hits: Vec<std::sync::atomic::AtomicUsize> =
            (0..17).map(|_| std::sync::atomic::AtomicUsize::new(0)).collect();
        Serial.run(17, &|j, w| {
            assert_eq!(w, 0);
            hits[j].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(std::sync::atomic::Ordering::Relaxed) == 1));
    }

    #[test]
    fn scratch_grows_monotonically() {
        let mut s = TransformScratch::<f64>::new();
        s.ensure(16, 1);
        s.ensure(8, 4); // more workers, smaller dim: keeps the larger dim
        unsafe {
            assert_eq!(s.workers.get(3).panel.len(), PANEL_W * 16);
            assert_eq!(s.workers.get(0).line.len(), 16);
        }
        s.ensure(64, 2); // grows dim, keeps 4 workers
        unsafe {
            assert_eq!(s.workers.get(3).panel.len(), PANEL_W * 64);
        }
    }
}
