//! Synthetic data substrate for the SPERR reproduction.
//!
//! The paper evaluates on SDRBench data sets (Miranda, S3D, Nyx, QMCPACK —
//! §VI-B) and a Kodak image (Fig. 1). Those inputs are not redistributable
//! here, so this crate synthesizes deterministic stand-ins with matched
//! *compression-relevant* character — spectral slope, sharp fronts, exact
//! zeros, dynamic range — from seeded Gaussian random fields (see
//! [`grf::gaussian_random_field`]) built on a from-scratch FFT ([`fft`]).
//!
//! # Example
//!
//! ```
//! use sperr_datagen::SyntheticField;
//!
//! let field = SyntheticField::MirandaPressure.generate([32, 32, 32], 7);
//! assert_eq!(field.len(), 32 * 32 * 32);
//! assert!(field.range() > 0.0);
//! ```

pub mod fft;
pub mod grf;
mod fields;

pub use fields::{qmcpack_stack, SyntheticField};

#[cfg(test)]
mod tests {
    use super::*;
    use sperr_compress_api::Precision;

    const DIMS: [usize; 3] = [24, 20, 16];

    #[test]
    fn all_fields_generate_finite_data() {
        for f in SyntheticField::TABLE2_FIELDS {
            let field = f.generate(DIMS, 11);
            assert_eq!(field.len(), DIMS.iter().product::<usize>());
            assert!(field.data.iter().all(|v| v.is_finite()), "{}", f.name());
            assert!(field.range() > 0.0, "{} has zero range", f.name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticField::NyxDarkMatterDensity.generate(DIMS, 5);
        let b = SyntheticField::NyxDarkMatterDensity.generate(DIMS, 5);
        assert_eq!(a.data, b.data);
        let c = SyntheticField::NyxDarkMatterDensity.generate(DIMS, 6);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn viscosity_has_exact_zeros() {
        // The real Miranda viscosity has large zero regions; ours must too
        // (this is what makes Visc behave differently in Figs. 3-4).
        let field = SyntheticField::MirandaViscosity.generate([32, 32, 32], 3);
        let zeros = field.data.iter().filter(|&&v| v == 0.0).count();
        assert!(
            zeros > field.len() / 4,
            "only {zeros} exact zeros out of {}",
            field.len()
        );
    }

    #[test]
    fn nyx_density_has_heavy_tail() {
        // Log-normal: max should dwarf the median by orders of magnitude.
        let field = SyntheticField::NyxDarkMatterDensity.generate([32, 32, 32], 9);
        let mut sorted = field.data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let max = *sorted.last().unwrap();
        assert!(max / median > 50.0, "tail ratio {}", max / median);
        assert!(sorted[0] > 0.0, "density must be strictly positive");
    }

    #[test]
    fn ch4_bounded_like_mass_fraction() {
        let field = SyntheticField::S3dCh4.generate(DIMS, 2);
        assert!(field.data.iter().all(|&v| (0.0..=0.05).contains(&v)));
    }

    #[test]
    fn temperature_in_kelvin_band() {
        let field = SyntheticField::S3dTemperature.generate(DIMS, 2);
        assert!(field.data.iter().all(|&v| (200.0..=2001.0).contains(&v)));
    }

    #[test]
    fn precision_markers_match_paper() {
        assert_eq!(SyntheticField::MirandaPressure.precision(), Precision::Double);
        assert_eq!(SyntheticField::NyxVelocityX.precision(), Precision::Single);
        assert_eq!(SyntheticField::Qmcpack.precision(), Precision::Single);
    }

    #[test]
    fn abbreviations_match_table2() {
        assert_eq!(SyntheticField::MirandaPressure.abbrev(20), "Press-20");
        assert_eq!(SyntheticField::S3dVelocityX.abbrev(40), "VX1-40");
        assert_eq!(SyntheticField::NyxDarkMatterDensity.abbrev(20), "Nyx-20");
        assert_eq!(SyntheticField::Qmcpack.abbrev(20), "QMC-20");
    }

    #[test]
    fn image2d_has_edges_and_smooth_regions() {
        let field = SyntheticField::Image2d.generate([96, 64, 1], 1);
        // In-range pixel values...
        assert!(field.data.iter().all(|&v| (0.0..=255.0).contains(&v)));
        // ...and a real edge: some large horizontal gradient.
        let max_grad = field
            .data
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0, f64::max);
        assert!(max_grad > 30.0, "no edges present: {max_grad}");
    }

    #[test]
    fn qmcpack_stack_layout() {
        let stack = qmcpack_stack(3, 5);
        assert_eq!(stack.dims, [69, 69, 115 * 3]);
        assert_eq!(stack.precision, Precision::Single);
        // Orbitals are independent: the first slab differs from the second.
        let slab = 69 * 69 * 115;
        assert_ne!(stack.data[..slab], stack.data[slab..2 * slab]);
        // Deterministic per seed.
        assert_eq!(qmcpack_stack(2, 9).data, qmcpack_stack(2, 9).data);
    }

    #[test]
    fn smoothness_ordering_pressure_vs_nyx() {
        // Pressure (steep spectrum) must be smoother than Nyx velocity
        // (shallow spectrum) relative to their scales.
        let p = SyntheticField::MirandaPressure.generate([32, 32, 32], 4);
        let v = SyntheticField::NyxVelocityX.generate([32, 32, 32], 4);
        let rel_rough = |d: &[f64]| {
            let range = sperr_compress_api::Field::new([32, 32, 32], d.to_vec()).range();
            d.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (d.len() as f64) / range
        };
        assert!(rel_rough(&p.data) < rel_rough(&v.data));
    }
}
