//! Zero-overhead observability shim for the SPERR pipeline.
//!
//! The whole crate is built around one switch: the `enabled` Cargo
//! feature. With the feature **off** (the default) every entry point
//! here compiles to nothing — [`SpanGuard`] is a zero-sized type with no
//! `Drop` impl, [`add_counter`] is an empty `#[inline(always)]`
//! function, and [`stop`] returns an empty [`Report`]. Instrumented hot
//! loops therefore carry no branches, no atomics, and no code size for
//! production builds. With the feature **on**, events are recorded into
//! per-thread lock-free ring buffers (owner-only writer, bounded
//! capacity, overflow counted rather than blocking) and drained into a
//! [`Report`] when [`stop`] is called.
//!
//! Recording is further gated at runtime by [`start`]/[`stop`]: even in
//! an `enabled` build, nothing is recorded until `start()` flips one
//! relaxed `AtomicBool`, so an instrumented binary run without
//! `--stats`/`--trace` pays only that load per event site.
//!
//! Threads identify themselves as workers via [`set_worker`] (the
//! `WorkerPool` calls this with the worker slot); each worker becomes
//! one timeline track in the report and in the exported Chrome trace.
//!
//! ```text
//! let _span = sperr_telemetry::span!("stage.wavelet.forward");
//! sperr_telemetry::counter!("speck.refinement_bits", enc.refinement_bits);
//! ```

mod chrome;
pub mod metrics;
mod report;

pub use metrics::{Histogram, MetricEntry, MetricsSnapshot, Unit};
pub use report::{CounterEvent, LabelSummary, Report, Span, Track};

/// Whether the `enabled` feature was compiled in. Const so callers can
/// branch without cost.
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

#[cfg(feature = "enabled")]
mod metrics_runtime;
#[cfg(feature = "enabled")]
mod runtime;

#[cfg(feature = "enabled")]
pub use runtime::{add_counter, is_recording, set_worker, start, stop, SpanGuard};

#[cfg(not(feature = "enabled"))]
mod disabled {
    /// No-op span handle: zero-sized, no `Drop`, vanishes entirely.
    pub struct SpanGuard;

    impl SpanGuard {
        #[inline(always)]
        pub fn new(_label: &'static str) -> SpanGuard {
            SpanGuard
        }

        #[inline(always)]
        pub fn with_value(_label: &'static str, _value: u64) -> SpanGuard {
            SpanGuard
        }
    }

    #[inline(always)]
    pub fn add_counter(_label: &'static str, _value: u64) {}

    #[inline(always)]
    pub fn set_worker(_slot: usize) {}

    #[inline(always)]
    pub fn start() {}

    #[inline(always)]
    pub fn is_recording() -> bool {
        false
    }

    #[inline(always)]
    pub fn stop() -> crate::Report {
        crate::Report::default()
    }
}

#[cfg(not(feature = "enabled"))]
pub use disabled::{add_counter, is_recording, set_worker, start, stop, SpanGuard};

/// Records one duration sample (nanoseconds) into the named latency
/// histogram. No-op without the `enabled` feature or outside a session.
#[inline(always)]
pub fn record_ns(label: &'static str, ns: u64) {
    #[cfg(feature = "enabled")]
    metrics_runtime::record(label, metrics::Unit::Nanos, ns);
    #[cfg(not(feature = "enabled"))]
    let _ = (label, ns);
}

/// Records one byte-size sample into the named size histogram (its max
/// doubles as the high-water mark in the export).
#[inline(always)]
pub fn record_bytes(label: &'static str, bytes: u64) {
    #[cfg(feature = "enabled")]
    metrics_runtime::record(label, metrics::Unit::Bytes, bytes);
    #[cfg(not(feature = "enabled"))]
    let _ = (label, bytes);
}

/// Records one dimensionless sample (e.g. in-flight chunk occupancy).
#[inline(always)]
pub fn record_units(label: &'static str, value: u64) {
    #[cfg(feature = "enabled")]
    metrics_runtime::record(label, metrics::Unit::Units, value);
    #[cfg(not(feature = "enabled"))]
    let _ = (label, value);
}

/// Handle over the process-wide metric shards. [`snapshot`] merges every
/// thread's histograms into one [`MetricsSnapshot`] (always empty
/// without the `enabled` feature); snapshots survive [`stop`] — shards
/// are only cleared by the next [`start`] — so exporters run after the
/// session closes.
///
/// [`snapshot`]: MetricsRegistry::snapshot
pub struct MetricsRegistry;

impl MetricsRegistry {
    /// The process-wide registry.
    pub fn global() -> MetricsRegistry {
        MetricsRegistry
    }

    /// Merges all per-thread shards into a snapshot, sorted by label.
    pub fn snapshot(&self) -> MetricsSnapshot {
        #[cfg(feature = "enabled")]
        {
            metrics_runtime::snapshot()
        }
        #[cfg(not(feature = "enabled"))]
        MetricsSnapshot::default()
    }
}

/// Guard that records the wall time from construction to drop into the
/// named latency histogram. Used for the top-level operation metrics
/// (`op.compress.f64`, `op.decode_region`, …) whose bodies have early
/// returns that make a closure-based [`timed`] awkward. Zero-sized and
/// inert without the `enabled` feature; in an enabled build it only arms
/// when a session is recording.
pub struct OpTimer {
    #[cfg(feature = "enabled")]
    armed: Option<(&'static str, std::time::Instant)>,
}

impl OpTimer {
    #[inline]
    pub fn new(label: &'static str) -> OpTimer {
        #[cfg(feature = "enabled")]
        {
            OpTimer { armed: is_recording().then(|| (label, std::time::Instant::now())) }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = label;
            OpTimer {}
        }
    }
}

impl Drop for OpTimer {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some((label, t0)) = self.armed {
            record_ns(label, t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Runs `f`, returning its result and wall-clock duration, and records a
/// span around it plus a latency-histogram sample when telemetry is
/// enabled. This is the replacement for the hand-rolled `Instant::now()`
/// pairs in the pipeline: the stage timing that feeds `StageTimes`, the
/// telemetry span and the stage histogram all come from one call site.
#[inline]
pub fn timed<R>(label: &'static str, f: impl FnOnce() -> R) -> (R, std::time::Duration) {
    let guard = SpanGuard::new(label);
    let t0 = std::time::Instant::now();
    let r = f();
    let elapsed = t0.elapsed();
    drop(guard);
    record_ns(label, elapsed.as_nanos() as u64);
    (r, elapsed)
}

/// Records a scoped span. Returns a guard; the span closes when the
/// guard drops. An optional second argument attaches a numeric payload
/// (e.g. the bitplane index) that shows up in the Chrome trace `args`.
#[macro_export]
macro_rules! span {
    ($label:expr) => {
        $crate::SpanGuard::new($label)
    };
    ($label:expr, $value:expr) => {
        $crate::SpanGuard::with_value($label, $value as u64)
    };
}

/// Adds `value` to the named counter (recorded as a timestamped event;
/// totals are aggregated per label in the report).
#[macro_export]
macro_rules! counter {
    ($label:expr, $value:expr) => {
        $crate::add_counter($label, $value as u64)
    };
}

#[cfg(all(test, not(feature = "enabled")))]
mod tests {
    use super::*;

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_api_is_inert() {
        assert!(!is_enabled());
        start();
        assert!(!is_recording());
        let _g = span!("never.recorded");
        counter!("never.counted", 7);
        set_worker(3);
        let report = stop();
        assert!(report.is_empty());
        assert_eq!(report.dropped, 0);
        assert!(report.counter_totals().is_empty());
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_span_guard_is_zero_sized() {
        assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
        assert_eq!(std::mem::size_of::<OpTimer>(), 0);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_metrics_are_inert() {
        start();
        record_ns("never.timed", 1_000);
        record_bytes("never.sized", 4096);
        record_units("never.counted", 3);
        let _t = OpTimer::new("never.op");
        drop(_t);
        let snap = MetricsRegistry::global().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.dropped, 0);
        let _ = stop();
        // Renderers stay usable on the empty snapshot.
        assert!(snap.render_prometheus().contains("sperr_metrics_dropped_samples 0"));
        assert!(snap.render_json().contains("sperr-metrics/v1"));
    }
}
