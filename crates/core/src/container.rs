//! SPERR container format: a fixed 20-byte header (the paper's §V-A notes
//! a fixed twenty-byte header whose cost is included in all evaluations),
//! an extended header, per-chunk tables, and the concatenated chunk
//! bitstreams.
//!
//! Three format versions exist:
//!
//! * **v1** — header, chunk table, payloads (the original layout).
//! * **v2** — identical through the chunk table, then one CRC-32 per
//!   chunk payload, then a CRC-32 over everything preceding it (the
//!   "header CRC"), then payloads. The checksums let a reader detect
//!   corruption cheaply ([`crate::Sperr::verify`]) and localize damage to
//!   individual chunks ([`crate::Sperr::decompress_resilient`]).
//! * **v3** — identical through the chunk table, then a **chunk index**
//!   (per chunk: payload byte offset, encoded length, chunk-grid
//!   coordinates, and the chunk's post-correction max point-wise error),
//!   then the v2 checksum block (whose header CRC also covers the index),
//!   then payloads. The index lets a reader seek straight to the chunks
//!   intersecting a region of interest ([`crate::Sperr::decode_region`])
//!   without walking the chunk table, and carries per-chunk quality
//!   metadata for preview/refinement decisions.
//!
//! The writer emits v3 by default (configurable down to v2 via
//! [`crate::SperrConfig::container_version`]); the reader accepts all
//! three versions (v1 streams have no checksums, so `chunk_crcs` parses
//! as `None`; v1/v2 streams have no index, so `index` parses as `None`).

use crate::crc32::crc32;
use crate::pipeline::ChunkEncoding;
use sperr_bitstream::{ByteReader, ByteWriter};
use sperr_compress_api::{CompressError, Precision};
use sperr_wavelet::Kernel;

pub(crate) const MAGIC: &[u8; 4] = b"SPRR";
/// Newest version [`write_container`] can emit, and the default (public
/// so the conformance manifest can record which container format its
/// goldens were cut against).
pub const VERSION: u8 = 3;
/// Checksummed but index-free version, still written on request
/// ([`crate::SperrConfig::container_version`]) and always accepted by
/// [`read_container`].
pub(crate) const VERSION_V2: u8 = 2;
/// Legacy checksum-free version, still accepted by [`read_container`].
pub(crate) const VERSION_V1: u8 = 1;

/// Serialized size of one chunk-table entry: f64 q, u8 num_planes,
/// u8 max_n, u32 num_outliers, u32 speck_len, u32 outlier_len.
pub(crate) const CHUNK_ENTRY_BYTES: usize = 22;

/// Serialized size of one chunk-index entry (v3 streams): u64 payload
/// offset, u32 encoded length, 3×u32 grid coordinates, f64 max error.
pub(crate) const INDEX_ENTRY_BYTES: usize = 32;

/// Hard ceiling on the total number of points a container may declare;
/// matches the SPECK coder's u32-index domain and keeps a corrupted
/// header from driving giant allocations.
const MAX_VOLUME_ELEMENTS: u64 = u32::MAX as u64;

/// Hard ceiling on the number of chunks in one container. The chunk grid
/// is materialized in memory, so a corrupt header must not be able to
/// declare an absurd grid.
const MAX_CHUNKS: u64 = 1 << 22;

/// Termination mode recorded in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Point-wise-error bounded (`bound_value` = tolerance t).
    Pwe,
    /// Size bounded (`bound_value` = target bits per point).
    Bpp,
    /// Average-error targeted (`bound_value` = target PSNR in dB); the
    /// §VII extension.
    Rmse,
}

/// Parsed container metadata.
#[derive(Debug, Clone)]
pub(crate) struct Header {
    pub mode: Mode,
    pub kernel: Kernel,
    pub precision: Precision,
    /// True when the chunk payloads were produced by the f32-native
    /// pipeline (precision tag 2 on the wire). Such streams decode
    /// natively to `f32`; the legacy Single tag (1) merely records that
    /// the *source* was f32 while the payload is still the f64 pipeline's.
    pub native_f32: bool,
    pub dims: [usize; 3],
    pub chunk_dims: [usize; 3],
    /// PWE tolerance (PWE mode) or target bits-per-point (BPP mode).
    pub bound_value: f64,
    pub n_chunks: usize,
}

/// Per-chunk table entry.
#[derive(Debug, Clone)]
pub(crate) struct ChunkEntry {
    pub q: f64,
    pub num_planes: u8,
    pub max_n: u8,
    /// Informational (cost accounting by external tools); not needed to
    /// decode.
    #[allow(dead_code)]
    pub num_outliers: u32,
    pub speck_len: usize,
    pub outlier_len: usize,
}

/// One entry of the v3 chunk index: where a chunk's payload lives, which
/// grid cell it covers, and how accurate its decode is. Public so tools
/// ([`crate::StreamInfo`], the CLI `info` command, conformance index
/// CRCs) can inspect the index without re-deriving it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkIndexEntry {
    /// Byte offset of the chunk's payload, relative to the first payload
    /// byte (so the index stays valid under outer lossless re-framing).
    pub offset: u64,
    /// Encoded payload length in bytes (SPECK stream + outlier stream).
    pub len: u32,
    /// Chunk-grid coordinates (x-fastest, matching [`crate::chunk_grid`]).
    pub coords: [u32; 3],
    /// Post-correction max point-wise error of this chunk's decode. Exact
    /// for PWE-mode streams; NaN when the mode doesn't track it (BPP/RMSE).
    pub max_err: f64,
}

impl ChunkIndexEntry {
    /// Deterministic byte serialization (little-endian, NaN via raw bits);
    /// used both by the container writer and by conformance index CRCs.
    pub fn to_bytes(&self) -> [u8; INDEX_ENTRY_BYTES] {
        let mut out = [0u8; INDEX_ENTRY_BYTES];
        out[0..8].copy_from_slice(&self.offset.to_le_bytes());
        out[8..12].copy_from_slice(&self.len.to_le_bytes());
        out[12..16].copy_from_slice(&self.coords[0].to_le_bytes());
        out[16..20].copy_from_slice(&self.coords[1].to_le_bytes());
        out[20..24].copy_from_slice(&self.coords[2].to_le_bytes());
        out[24..32].copy_from_slice(&self.max_err.to_bits().to_le_bytes());
        out
    }
}

/// Everything [`read_container`] extracts from a stream.
#[derive(Debug, Clone)]
pub(crate) struct Parsed {
    pub version: u8,
    pub header: Header,
    pub entries: Vec<ChunkEntry>,
    /// Byte offset of the first payload byte.
    pub payload_start: usize,
    /// Per-chunk payload CRC-32s (v2+ streams only).
    pub chunk_crcs: Option<Vec<u32>>,
    /// Chunk index (v3+ streams only), validated against the chunk table.
    pub index: Option<Vec<ChunkIndexEntry>>,
}

fn kernel_tag(k: Kernel) -> u8 {
    match k {
        Kernel::Cdf97 => 0,
        Kernel::Cdf53 => 1,
        Kernel::Haar => 2,
    }
}

fn kernel_from_tag(tag: u8) -> Result<Kernel, CompressError> {
    match tag {
        0 => Ok(Kernel::Cdf97),
        1 => Ok(Kernel::Cdf53),
        2 => Ok(Kernel::Haar),
        _ => Err(CompressError::Corrupt(format!("unknown kernel tag {tag}"))),
    }
}

/// Serializes header + chunk table (+ v3 index, + v2 checksums) +
/// payloads.
fn write_container_versioned(header: &Header, chunks: &[ChunkEncoding], version: u8) -> Vec<u8> {
    let mut w = ByteWriter::new();
    // Fixed 20-byte header.
    w.put_bytes(MAGIC);
    w.put_u8(version);
    w.put_u8(match header.mode {
        Mode::Pwe => 0,
        Mode::Bpp => 1,
        Mode::Rmse => 2,
    });
    w.put_u8(kernel_tag(header.kernel));
    // Precision byte: 0 = f64 payload from an f64 source, 1 = f64 payload
    // from an f32 source (legacy widen-at-ingest), 2 = f32-native payload.
    w.put_u8(if header.native_f32 {
        2
    } else {
        match header.precision {
            Precision::Double => 0,
            Precision::Single => 1,
        }
    });
    w.put_u32(header.dims[0] as u32);
    w.put_u32(header.dims[1] as u32);
    w.put_u32(header.dims[2] as u32);
    debug_assert_eq!(w.len(), 20);
    // Extended header.
    w.put_f64(header.bound_value);
    w.put_u32(header.chunk_dims[0] as u32);
    w.put_u32(header.chunk_dims[1] as u32);
    w.put_u32(header.chunk_dims[2] as u32);
    w.put_u32(chunks.len() as u32);
    // Chunk table.
    for c in chunks {
        w.put_f64(c.q);
        w.put_u8(c.num_planes);
        w.put_u8(c.max_n);
        w.put_u32(c.num_outliers);
        w.put_u32(c.speck_stream.len() as u32);
        w.put_u32(c.outlier_stream.len() as u32);
    }
    if version >= 3 {
        // Chunk index: offsets are relative to the first payload byte and
        // grid coordinates follow the x-fastest `chunk_grid` order the
        // chunks themselves are stored in.
        let grid = [
            header.dims[0].div_ceil(header.chunk_dims[0]) as u32,
            header.dims[1].div_ceil(header.chunk_dims[1]) as u32,
        ];
        let mut offset = 0u64;
        for (i, c) in chunks.iter().enumerate() {
            let len = (c.speck_stream.len() + c.outlier_stream.len()) as u32;
            let i = i as u32;
            let entry = ChunkIndexEntry {
                offset,
                len,
                coords: [i % grid[0], (i / grid[0]) % grid[1], i / (grid[0] * grid[1])],
                max_err: c.max_err,
            };
            w.put_bytes(&entry.to_bytes());
            offset += len as u64;
        }
    }
    if version >= 2 {
        // One CRC per chunk, over the chunk's concatenated payload bytes
        // (SPECK stream then outlier stream).
        for c in chunks {
            let mut crc_input = Vec::with_capacity(c.speck_stream.len() + c.outlier_stream.len());
            crc_input.extend_from_slice(&c.speck_stream);
            crc_input.extend_from_slice(&c.outlier_stream);
            w.put_u32(crc32(&crc_input));
        }
        // Header CRC over every byte written so far (fixed + extended
        // headers, chunk table, v3 index when present, chunk CRCs).
        let header_crc = crc32(w.as_slice());
        w.put_u32(header_crc);
    }
    // Payloads.
    for c in chunks {
        w.put_bytes(&c.speck_stream);
        w.put_bytes(&c.outlier_stream);
    }
    w.into_bytes()
}

/// Serializes a container at the requested version (2 or 3; use
/// [`write_container_v1`] for the legacy layout). The version comes from
/// [`crate::SperrConfig::container_version`] or, for transcodes, the
/// source stream.
pub(crate) fn write_container(header: &Header, chunks: &[ChunkEncoding], version: u8) -> Vec<u8> {
    debug_assert!((VERSION_V1..=VERSION).contains(&version));
    write_container_versioned(header, chunks, version)
}

/// Serializes a legacy v1 container (no checksums). Kept for back-compat
/// tests and the conformance v1 fixture ([`crate::Sperr::downgrade_to_v1`]):
/// every reader must keep accepting v1 streams.
pub(crate) fn write_container_v1(header: &Header, chunks: &[ChunkEncoding]) -> Vec<u8> {
    write_container_versioned(header, chunks, VERSION_V1)
}

/// Parses a container (v1, v2 or v3), returning metadata, the chunk
/// table, the payload offset, the v2+ checksums and the v3 index when
/// present. For v2+ streams the header CRC is verified here; per-chunk
/// payload CRCs are left to the caller, which may want per-chunk
/// granularity (resilient decode) rather than all-or-nothing failure.
/// The v3 index is cross-checked against the chunk table (offsets must
/// be the cumulative payload lengths, coordinates must walk the grid),
/// so a parsed index can be trusted for seeking.
pub(crate) fn read_container(bytes: &[u8]) -> Result<Parsed, CompressError> {
    let mut r = ByteReader::new(bytes);
    if r.get_bytes(4)? != MAGIC {
        return Err(CompressError::Corrupt("bad magic".into()));
    }
    let version = r.get_u8()?;
    if !(VERSION_V1..=VERSION).contains(&version) {
        return Err(CompressError::Unsupported("unsupported container version"));
    }
    let mode = match r.get_u8()? {
        0 => Mode::Pwe,
        1 => Mode::Bpp,
        2 => Mode::Rmse,
        m => return Err(CompressError::Corrupt(format!("unknown mode {m}"))),
    };
    let kernel = kernel_from_tag(r.get_u8()?)?;
    let (precision, native_f32) = match r.get_u8()? {
        0 => (Precision::Double, false),
        1 => (Precision::Single, false),
        2 => (Precision::Single, true),
        p => return Err(CompressError::Corrupt(format!("unknown precision {p}"))),
    };
    let dims = [r.get_u32()? as usize, r.get_u32()? as usize, r.get_u32()? as usize];
    if dims.iter().any(|&d| d == 0) {
        return Err(CompressError::Corrupt("zero dimension".into()));
    }
    let n_total = dims.iter().fold(1u64, |acc, &d| acc.saturating_mul(d as u64));
    if n_total > MAX_VOLUME_ELEMENTS {
        return Err(CompressError::LimitExceeded(format!(
            "declared volume of {n_total} points exceeds the {MAX_VOLUME_ELEMENTS} limit"
        )));
    }
    let bound_value = r.get_f64()?;
    let chunk_dims = [r.get_u32()? as usize, r.get_u32()? as usize, r.get_u32()? as usize];
    if chunk_dims.iter().any(|&d| d == 0) {
        return Err(CompressError::Corrupt("zero chunk dimension".into()));
    }
    let n_chunks = r.get_u32()? as usize;
    // Validate the chunk count against the grid the dims imply, without
    // materializing the grid first (a corrupt header must not drive the
    // allocation inside `chunk_grid`).
    let grid_size = dims
        .iter()
        .zip(&chunk_dims)
        .fold(1u64, |acc, (&d, &c)| acc.saturating_mul(d.div_ceil(c) as u64));
    if grid_size > MAX_CHUNKS {
        return Err(CompressError::LimitExceeded(format!(
            "declared chunk grid of {grid_size} chunks exceeds the {MAX_CHUNKS} limit"
        )));
    }
    if n_chunks as u64 != grid_size {
        return Err(CompressError::Corrupt(format!(
            "chunk count {n_chunks} does not match grid {grid_size}"
        )));
    }
    // The chunk table must physically fit in the remaining stream before
    // any reservation sized by it.
    if n_chunks.saturating_mul(CHUNK_ENTRY_BYTES) > r.remaining() {
        return Err(CompressError::Truncated("chunk table extends past end of stream".into()));
    }
    let mut entries = Vec::with_capacity(n_chunks);
    for _ in 0..n_chunks {
        let q = r.get_f64()?;
        let num_planes = r.get_u8()?;
        let max_n = r.get_u8()?;
        let num_outliers = r.get_u32()?;
        let speck_len = r.get_u32()? as usize;
        let outlier_len = r.get_u32()? as usize;
        if !(q > 0.0) || !q.is_finite() {
            return Err(CompressError::Corrupt("invalid quantization step".into()));
        }
        entries.push(ChunkEntry { q, num_planes, max_n, num_outliers, speck_len, outlier_len });
    }
    let index = if version >= 3 {
        if n_chunks.saturating_mul(INDEX_ENTRY_BYTES) > r.remaining() {
            return Err(CompressError::Truncated("chunk index extends past end of stream".into()));
        }
        let grid = [
            dims[0].div_ceil(chunk_dims[0]) as u32,
            dims[1].div_ceil(chunk_dims[1]) as u32,
        ];
        let mut idx = Vec::with_capacity(n_chunks);
        let mut expected_offset = 0u64;
        for (i, e) in entries.iter().enumerate() {
            let offset = r.get_u64()?;
            let len = r.get_u32()?;
            let coords = [r.get_u32()?, r.get_u32()?, r.get_u32()?];
            let max_err = r.get_f64()?;
            // The index duplicates information derivable from the chunk
            // table; require exact agreement so a reader can seek through
            // either without surprises.
            if offset != expected_offset || len as u64 != e.speck_len as u64 + e.outlier_len as u64
            {
                return Err(CompressError::Corrupt(format!(
                    "chunk index entry {i} disagrees with the chunk table"
                )));
            }
            let i32c = i as u32;
            let expect =
                [i32c % grid[0], (i32c / grid[0]) % grid[1], i32c / (grid[0] * grid[1])];
            if coords != expect {
                return Err(CompressError::Corrupt(format!(
                    "chunk index entry {i} has grid coordinates {coords:?}, expected {expect:?}"
                )));
            }
            idx.push(ChunkIndexEntry { offset, len, coords, max_err });
            expected_offset += len as u64;
        }
        Some(idx)
    } else {
        None
    };
    let chunk_crcs = if version >= 2 {
        if n_chunks.saturating_mul(4) + 4 > r.remaining() {
            return Err(CompressError::Truncated("checksum table extends past end of stream".into()));
        }
        let mut crcs = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            crcs.push(r.get_u32()?);
        }
        // Header CRC covers every byte before the CRC field itself.
        let covered = &bytes[..r.position()];
        let stored = r.get_u32()?;
        if crc32(covered) != stored {
            return Err(CompressError::Corrupt("header checksum mismatch".into()));
        }
        Some(crcs)
    } else {
        None
    };
    let payload_start = r.position();
    let payload_total = entries
        .iter()
        .fold(0u64, |acc, e| acc.saturating_add(e.speck_len as u64 + e.outlier_len as u64));
    if (bytes.len() as u64) < payload_start as u64 + payload_total {
        return Err(CompressError::Truncated("payload section shorter than declared".into()));
    }
    Ok(Parsed {
        version,
        header: Header {
            mode,
            kernel,
            precision,
            native_f32,
            dims,
            chunk_dims,
            bound_value,
            n_chunks,
        },
        entries,
        payload_start,
        chunk_crcs,
        index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StageTimes;

    fn dummy_chunk(speck: Vec<u8>, outlier: Vec<u8>) -> ChunkEncoding {
        ChunkEncoding {
            speck_bits: speck.len() * 8,
            outlier_bits: outlier.len() * 8,
            speck_stream: speck,
            outlier_stream: outlier,
            q: 0.5,
            num_planes: 7,
            max_n: 3,
            num_outliers: 2,
            times: StageTimes::default(),
            coeff_sq_error: 0.0,
            max_err: 0.125,
        }
    }

    fn dummy_header() -> Header {
        Header {
            mode: Mode::Pwe,
            kernel: Kernel::Cdf97,
            precision: Precision::Double,
            native_f32: false,
            dims: [8, 8, 8],
            chunk_dims: [8, 8, 8],
            bound_value: 0.25,
            n_chunks: 1,
        }
    }

    #[test]
    fn header_is_exactly_20_bytes_before_extension() {
        let bytes = write_container(&dummy_header(), &[dummy_chunk(vec![1, 2, 3], vec![])], VERSION);
        assert_eq!(&bytes[..4], MAGIC);
        // dims start at offset 8, occupy 12 bytes -> fixed header = 20.
        let parsed = read_container(&bytes).unwrap();
        assert_eq!(parsed.version, VERSION);
        assert_eq!(parsed.header.dims, [8, 8, 8]);
        assert_eq!(parsed.entries.len(), 1);
        assert_eq!(&bytes[parsed.payload_start..parsed.payload_start + 3], &[1, 2, 3]);
    }

    #[test]
    fn roundtrip_multiple_chunks() {
        let header = Header {
            mode: Mode::Bpp,
            kernel: Kernel::Cdf53,
            precision: Precision::Single,
            native_f32: false,
            dims: [20, 8, 8],
            chunk_dims: [10, 8, 8],
            bound_value: 2.0,
            n_chunks: 2,
        };
        let chunks = vec![dummy_chunk(vec![9; 5], vec![7; 2]), dummy_chunk(vec![1; 3], vec![])];
        let bytes = write_container(&header, &chunks, VERSION);
        let parsed = read_container(&bytes).unwrap();
        assert_eq!(parsed.header.mode, Mode::Bpp);
        assert_eq!(parsed.header.kernel, Kernel::Cdf53);
        assert_eq!(parsed.header.precision, Precision::Single);
        assert_eq!(parsed.entries[0].speck_len, 5);
        assert_eq!(parsed.entries[0].outlier_len, 2);
        assert_eq!(parsed.entries[1].speck_len, 3);
        let payload = &bytes[parsed.payload_start..];
        assert_eq!(payload, &[9, 9, 9, 9, 9, 7, 7, 1, 1, 1]);
        // v2 checksums are present and match the payloads.
        let crcs = parsed.chunk_crcs.unwrap();
        assert_eq!(crcs.len(), 2);
        assert_eq!(crcs[0], crc32(&[9, 9, 9, 9, 9, 7, 7]));
        assert_eq!(crcs[1], crc32(&[1, 1, 1]));
        // v3 index carries cumulative offsets, lengths, grid coordinates
        // (two chunks along x) and the per-chunk max error.
        let index = parsed.index.unwrap();
        assert_eq!(
            index,
            vec![
                ChunkIndexEntry { offset: 0, len: 7, coords: [0, 0, 0], max_err: 0.125 },
                ChunkIndexEntry { offset: 7, len: 3, coords: [1, 0, 0], max_err: 0.125 },
            ]
        );
    }

    #[test]
    fn native_f32_precision_tag_roundtrips() {
        // Tag 2 on the wire: precision parses as Single with native_f32
        // set; legacy tags 0/1 keep native_f32 clear. Byte 7 is the
        // precision byte in the fixed header.
        let header = Header { native_f32: true, precision: Precision::Single, ..dummy_header() };
        let bytes = write_container(&header, &[dummy_chunk(vec![1, 2, 3], vec![])], VERSION);
        assert_eq!(bytes[7], 2);
        let parsed = read_container(&bytes).unwrap();
        assert_eq!(parsed.header.precision, Precision::Single);
        assert!(parsed.header.native_f32);
        let legacy = write_container(&dummy_header(), &[dummy_chunk(vec![1], vec![])], VERSION);
        assert_eq!(legacy[7], 0);
        assert!(!read_container(&legacy).unwrap().header.native_f32);
    }

    #[test]
    fn v1_stream_still_parses_without_checksums() {
        let bytes = write_container_v1(&dummy_header(), &[dummy_chunk(vec![1, 2, 3], vec![4])]);
        let parsed = read_container(&bytes).unwrap();
        assert_eq!(parsed.version, VERSION_V1);
        assert!(parsed.chunk_crcs.is_none());
        assert!(parsed.index.is_none());
        assert_eq!(parsed.entries[0].speck_len, 3);
        assert_eq!(&bytes[parsed.payload_start..], &[1, 2, 3, 4]);
    }

    #[test]
    fn v2_is_v1_plus_checksum_block() {
        // The two layouts agree byte-for-byte up to the checksum block
        // (modulo the version byte), so v1 readers of the future could at
        // worst skip checksums, and sizes differ by exactly 4(n+1) bytes.
        let chunks = vec![dummy_chunk(vec![1, 2, 3], vec![4])];
        let v1 = write_container_v1(&dummy_header(), &chunks);
        let v2 = write_container(&dummy_header(), &chunks, VERSION_V2);
        assert_eq!(v2.len(), v1.len() + 4 * (chunks.len() + 1));
        let table_end = 20 + 24 + CHUNK_ENTRY_BYTES * chunks.len();
        assert_eq!(v1[5..table_end], v2[5..table_end]);
        let parsed = read_container(&v2).unwrap();
        assert!(parsed.chunk_crcs.is_some());
        assert!(parsed.index.is_none());
    }

    #[test]
    fn v3_is_v2_plus_index_block() {
        // v3 inserts exactly one index entry per chunk between the chunk
        // table and the checksum block; everything before the index is
        // byte-identical to v2 (modulo the version byte), and the final
        // header CRC differs because it also covers the index.
        let chunks = vec![dummy_chunk(vec![1, 2, 3], vec![4]), dummy_chunk(vec![5; 6], vec![])];
        let header = Header { dims: [16, 8, 8], chunk_dims: [8, 8, 8], n_chunks: 2, ..dummy_header() };
        let v2 = write_container(&header, &chunks, VERSION_V2);
        let v3 = write_container(&header, &chunks, VERSION);
        assert_eq!(v3.len(), v2.len() + INDEX_ENTRY_BYTES * chunks.len());
        let table_end = 20 + 24 + CHUNK_ENTRY_BYTES * chunks.len();
        assert_eq!(v2[5..table_end], v3[5..table_end]);
        let parsed = read_container(&v3).unwrap();
        assert_eq!(parsed.version, VERSION);
        let index = parsed.index.unwrap();
        assert_eq!(index.len(), 2);
        assert_eq!(index[0].offset, 0);
        assert_eq!(index[0].len, 4);
        assert_eq!(index[1].offset, 4);
        assert_eq!(index[1].len, 6);
        assert_eq!(index[0].coords, [0, 0, 0]);
        assert_eq!(index[1].coords, [1, 0, 0]);
        // Payloads land identically in both versions.
        let parsed_v2 = read_container(&v2).unwrap();
        assert_eq!(v2[parsed_v2.payload_start..], v3[parsed.payload_start..]);
    }

    #[test]
    fn header_checksum_detects_any_header_byte_flip() {
        // v3: the protected region includes the chunk index, so any index
        // flip must also be rejected (either by the CRC or by the
        // index-vs-table consistency check).
        let bytes = write_container(&dummy_header(), &[dummy_chunk(vec![1, 2, 3], vec![])], VERSION);
        let parsed = read_container(&bytes).unwrap();
        // Flip each byte of the protected region (skipping none): every
        // mutation must be rejected, never panic.
        for i in 0..parsed.payload_start {
            let mut bad = bytes.clone();
            bad[i] ^= 0xA5;
            assert!(read_container(&bad).is_err(), "header flip at byte {i} accepted");
        }
    }

    #[test]
    fn index_inconsistent_with_table_rejected() {
        // A v1-style hand-poke can't exercise this (v2+ header CRC fires
        // first), so corrupt the index *and* refresh the trailing CRC to
        // prove the structural cross-check stands on its own.
        let chunks = vec![dummy_chunk(vec![1, 2, 3], vec![4]), dummy_chunk(vec![5; 6], vec![])];
        let header = Header { dims: [16, 8, 8], chunk_dims: [8, 8, 8], n_chunks: 2, ..dummy_header() };
        let good = write_container(&header, &chunks, VERSION);
        let index_start = 20 + 24 + CHUNK_ENTRY_BYTES * chunks.len();
        let crc_pos = good.len() - (4 + 6) - 4; // payload bytes + header CRC
        for poke in [index_start, index_start + 8, index_start + 12] {
            let mut bad = good.clone();
            bad[poke] ^= 0x01;
            let crc = crc32(&bad[..crc_pos]);
            bad[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());
            match read_container(&bad) {
                Err(CompressError::Corrupt(msg)) => {
                    assert!(msg.contains("chunk index"), "unexpected error: {msg}")
                }
                other => panic!("index poke at {poke} not rejected: {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_inputs_rejected() {
        let good = write_container(&dummy_header(), &[dummy_chunk(vec![1, 2, 3], vec![])], VERSION);
        // magic
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(read_container(&bad).is_err());
        // version
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(read_container(&bad), Err(CompressError::Unsupported(_))));
        // truncated payload
        let bad = &good[..good.len() - 2];
        assert!(read_container(bad).is_err());
        // zero dim
        let mut bad = good.clone();
        bad[8..12].fill(0);
        assert!(read_container(&bad).is_err());
    }

    #[test]
    fn absurd_headers_hit_limits_not_allocations() {
        // Craft a v1 stream (no header CRC to fix up) with huge dims.
        let good = write_container_v1(&dummy_header(), &[dummy_chunk(vec![1, 2, 3], vec![])]);
        // Volume limit: dims -> u32::MAX on every axis.
        let mut bad = good.clone();
        bad[8..20].fill(0xFF);
        assert!(matches!(read_container(&bad), Err(CompressError::LimitExceeded(_))));
        // Chunk-grid limit: big volume, 1x1x1 chunks.
        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&4096u32.to_le_bytes());
        bad[12..16].copy_from_slice(&4096u32.to_le_bytes());
        bad[16..20].copy_from_slice(&64u32.to_le_bytes());
        bad[28..32].copy_from_slice(&1u32.to_le_bytes());
        bad[32..36].copy_from_slice(&1u32.to_le_bytes());
        bad[36..40].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(read_container(&bad), Err(CompressError::LimitExceeded(_))));
    }
}
