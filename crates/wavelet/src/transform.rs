//! Multilevel, multi-dimensional transform driver.
//!
//! 2D/3D transforms are separable: each level applies the 1D kernel along
//! every axis of the current approximation sub-box ("transforms are
//! separately applied along each axis", §III-A), then halves the
//! transformed axes. Axes with fewer levels (short dimensions) simply stop
//! participating once their level budget is exhausted.

use crate::kernels::Kernel;

/// Number of recursive transform passes for an axis of length `n`:
/// `min(6, ⌊log2 n⌋ − 2)`, clamped to 0 for short axes (paper §III-A).
pub fn num_levels(n: usize) -> usize {
    if n < 8 {
        return 0;
    }
    let log2 = usize::BITS as usize - 1 - n.leading_zeros() as usize;
    (log2 - 2).min(6)
}

/// Per-axis level counts for a 3D volume, using [`num_levels`].
pub fn levels_for_dims(dims: [usize; 3]) -> [usize; 3] {
    [num_levels(dims[0]), num_levels(dims[1]), num_levels(dims[2])]
}

/// Length of the approximation band after one level on an axis of length
/// `n` (`ceil(n/2)`; the low band is packed first).
pub fn approx_len(n: usize) -> usize {
    n.div_ceil(2)
}

/// Forward multilevel transform of a 1D signal in place.
pub fn forward_1d(data: &mut [f64], n: usize, levels: usize, kernel: Kernel) {
    assert!(data.len() >= n);
    let mut scratch = vec![0.0; n];
    let mut len = n;
    for _ in 0..levels {
        if len < 2 {
            break;
        }
        kernel.forward_line(data, len, &mut scratch);
        len = approx_len(len);
    }
}

/// Inverse of [`forward_1d`].
pub fn inverse_1d(data: &mut [f64], n: usize, levels: usize, kernel: Kernel) {
    assert!(data.len() >= n);
    let mut scratch = vec![0.0; n];
    // Recompute the per-level lengths, then undo them in reverse order.
    let mut lens = Vec::with_capacity(levels);
    let mut len = n;
    for _ in 0..levels {
        if len < 2 {
            break;
        }
        lens.push(len);
        len = approx_len(len);
    }
    for &len in lens.iter().rev() {
        kernel.inverse_line(data, len, &mut scratch);
    }
}

/// Forward multilevel transform of a row-major 2D field in place.
/// `dims = [nx, ny]` with `x` fastest-varying.
pub fn forward_2d(data: &mut [f64], dims: [usize; 2], levels: [usize; 2], kernel: Kernel) {
    let d3 = [dims[0], dims[1], 1];
    forward_3d(data, d3, [levels[0], levels[1], 0], kernel);
}

/// Inverse of [`forward_2d`].
pub fn inverse_2d(data: &mut [f64], dims: [usize; 2], levels: [usize; 2], kernel: Kernel) {
    let d3 = [dims[0], dims[1], 1];
    inverse_3d(data, d3, [levels[0], levels[1], 0], kernel);
}

/// Forward multilevel transform of a row-major 3D volume in place.
/// `dims = [nx, ny, nz]` with `x` fastest-varying (index
/// `x + nx*(y + ny*z)`).
pub fn forward_3d(data: &mut [f64], dims: [usize; 3], levels: [usize; 3], kernel: Kernel) {
    assert_eq!(data.len(), dims[0] * dims[1] * dims[2], "data/dims mismatch");
    let max_levels = levels.iter().copied().max().unwrap_or(0);
    let max_dim = dims.iter().copied().max().unwrap_or(0);
    let mut line = vec![0.0; max_dim];
    let mut scratch = vec![0.0; max_dim];
    let mut cur = dims;
    for level in 0..max_levels {
        for axis in 0..3 {
            if level < levels[axis] && cur[axis] >= 2 {
                apply_axis(data, dims, cur, axis, &mut line, &mut scratch, |buf, n, s| {
                    kernel.forward_line(buf, n, s)
                });
                cur[axis] = approx_len(cur[axis]);
            }
        }
    }
}

/// Inverse of [`forward_3d`].
pub fn inverse_3d(data: &mut [f64], dims: [usize; 3], levels: [usize; 3], kernel: Kernel) {
    inverse_3d_partial(data, dims, levels, 0, kernel);
}

/// Partial inverse supporting multi-resolution reconstruction (paper
/// §VII: each coarsened hierarchy level resembles the full-resolution
/// data): undoes all forward steps *except* the finest `skip_finest`
/// levels on each axis. Afterwards, the sub-box
/// `[0, coarse_dims(dims, levels, skip_finest))` holds the reconstructed
/// approximation of the data at that resolution (values carry the
/// kernel's per-level DC gain, √2 per skipped level for the unit-norm
/// kernels — divide by `2^(skip/2)` per axis for physical units; see
/// [`coarse_scale`]).
pub fn inverse_3d_partial(
    data: &mut [f64],
    dims: [usize; 3],
    levels: [usize; 3],
    skip_finest: usize,
    kernel: Kernel,
) {
    assert_eq!(data.len(), dims[0] * dims[1] * dims[2], "data/dims mismatch");
    let max_levels = levels.iter().copied().max().unwrap_or(0);
    let max_dim = dims.iter().copied().max().unwrap_or(0);
    let mut line = vec![0.0; max_dim];
    let mut scratch = vec![0.0; max_dim];

    // Replay the forward schedule to learn each step's box size, then undo
    // the steps last-to-first, stopping before the finest `skip_finest`
    // levels.
    let mut schedule: Vec<(usize, usize, usize)> = Vec::new(); // (level, axis, len before)
    let mut cur = dims;
    for level in 0..max_levels {
        for axis in 0..3 {
            if level < levels[axis] && cur[axis] >= 2 {
                schedule.push((level, axis, cur[axis]));
                cur[axis] = approx_len(cur[axis]);
            }
        }
    }
    for &(level, axis, len_before) in schedule.iter().rev() {
        if level < skip_finest {
            continue;
        }
        cur[axis] = len_before;
        apply_axis(data, dims, cur, axis, &mut line, &mut scratch, |buf, n, s| {
            kernel.inverse_line(buf, n, s)
        });
    }
}

/// Dimensions of the approximation sub-box after `skip_finest` forward
/// levels remain un-inverted (companion to [`inverse_3d_partial`]).
pub fn coarse_dims(dims: [usize; 3], levels: [usize; 3], skip_finest: usize) -> [usize; 3] {
    let mut out = dims;
    for axis in 0..3 {
        for _ in 0..skip_finest.min(levels[axis]) {
            if out[axis] >= 2 {
                out[axis] = approx_len(out[axis]);
            }
        }
    }
    out
}

/// Amplitude scale carried by the approximation band at a coarse
/// resolution: the unit-norm kernels gain √2 per level per transformed
/// axis. Divide coarse samples by this to recover physical units.
pub fn coarse_scale(dims: [usize; 3], levels: [usize; 3], skip_finest: usize) -> f64 {
    let mut transformed_axis_levels = 0usize;
    for axis in 0..3 {
        let mut len = dims[axis];
        for lv in 0..levels[axis].min(skip_finest) {
            let _ = lv;
            if len >= 2 {
                transformed_axis_levels += 1;
                len = approx_len(len);
            }
        }
    }
    f64::exp2(transformed_axis_levels as f64 / 2.0)
}

/// Applies `f` to every line along `axis` within the sub-box
/// `[0, cur[0]) x [0, cur[1]) x [0, cur[2])` of the full `dims` array.
fn apply_axis(
    data: &mut [f64],
    dims: [usize; 3],
    cur: [usize; 3],
    axis: usize,
    line: &mut [f64],
    scratch: &mut [f64],
    mut f: impl FnMut(&mut [f64], usize, &mut [f64]),
) {
    let n = cur[axis];
    let (stride_x, stride_y, stride_z) = (1, dims[0], dims[0] * dims[1]);
    let strides = [stride_x, stride_y, stride_z];
    let stride = strides[axis];
    // The two non-transformed axes.
    let (a, b) = match axis {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    };
    for jb in 0..cur[b] {
        for ja in 0..cur[a] {
            let base = ja * strides[a] + jb * strides[b];
            if stride == 1 {
                // Contiguous fast path along x.
                f(&mut data[base..base + n], n, scratch);
            } else {
                for (i, slot) in line[..n].iter_mut().enumerate() {
                    *slot = data[base + i * stride];
                }
                f(line, n, scratch);
                for (i, &v) in line[..n].iter().enumerate() {
                    data[base + i * stride] = v;
                }
            }
        }
    }
}
