//! The recording runtime behind the `enabled` feature: per-thread
//! bounded ring buffers, a global registry, and the start/stop session
//! machinery that drains rings into a [`Report`].
//!
//! Concurrency model: each ring has exactly one writer (its owning
//! thread). `len` is the publication point — the writer stores a slot
//! and then bumps `len` with `Release`; the drain loads `len` with
//! `Acquire` and only reads slots below it, so a slot is never read
//! while it is being written. When a ring fills up, further events are
//! dropped and counted ([`Report::dropped`]) instead of blocking or
//! allocating; a drop can orphan a span's exit event, in which case the
//! span is closed at session end during pairing. There is a benign race
//! at session boundaries (a thread that loaded the recording flag just
//! before `stop()` may land one more event); since sessions bracket
//! whole pipeline runs and `start()` resets every ring, this cannot leak
//! events across sessions in practice.

use std::cell::{Cell, OnceCell, UnsafeCell};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::report::{CounterEvent, Report, Span, Track};

/// Events per thread before overflow. 64 Ki events × 40 B ≈ 2.5 MiB per
/// recorded thread — enough for hundreds of chunks of per-stage,
/// per-axis, and per-bitplane spans.
const RING_CAPACITY: usize = 1 << 16;

const K_ENTER: u8 = 0;
const K_EXIT: u8 = 1;
const K_COUNTER: u8 = 2;

/// Sentinel for "span has no numeric payload".
const NO_VALUE: u64 = u64::MAX;

#[derive(Clone, Copy)]
struct Event {
    t_ns: u64,
    value: u64,
    label: &'static str,
    kind: u8,
}

struct Ring {
    slots: Box<[UnsafeCell<Event>]>,
    /// Number of published slots. Written only by the owning thread.
    len: AtomicUsize,
    /// Events discarded because the ring was full.
    dropped: AtomicUsize,
    /// Worker slot + 1 as reported via [`set_worker`]; 0 = unnamed.
    worker: AtomicUsize,
}

// SAFETY: slots are written only by the owning thread and read by the
// drain strictly below the Acquire-loaded `len`, which the writer bumps
// with Release only after the slot write completes.
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    fn new(worker: usize) -> Ring {
        let blank = Event { t_ns: 0, value: 0, label: "", kind: K_COUNTER };
        let slots: Vec<UnsafeCell<Event>> =
            (0..RING_CAPACITY).map(|_| UnsafeCell::new(blank)).collect();
        Ring {
            slots: slots.into_boxed_slice(),
            len: AtomicUsize::new(0),
            dropped: AtomicUsize::new(0),
            worker: AtomicUsize::new(worker),
        }
    }

    #[inline]
    fn push(&self, ev: Event) {
        let i = self.len.load(Ordering::Relaxed);
        if i >= RING_CAPACITY {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: only the owning thread writes, and slot `i` is not yet
        // published (len is still `i`).
        unsafe { *self.slots[i].get() = ev };
        self.len.store(i + 1, Ordering::Release);
    }

    fn snapshot(&self) -> (Vec<Event>, usize, usize) {
        let n = self.len.load(Ordering::Acquire).min(RING_CAPACITY);
        // SAFETY: slots below the Acquire-loaded `len` are fully written.
        let events = (0..n).map(|i| unsafe { *self.slots[i].get() }).collect();
        (events, self.dropped.load(Ordering::Relaxed), self.worker.load(Ordering::Relaxed))
    }
}

static RECORDING: AtomicBool = AtomicBool::new(false);
static SESSION_T0: AtomicU64 = AtomicU64::new(0);
static REGISTRY: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());
static ANCHOR: OnceLock<Instant> = OnceLock::new();

#[inline]
fn now_ns() -> u64 {
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn lock_registry() -> MutexGuard<'static, Vec<Arc<Ring>>> {
    REGISTRY.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

thread_local! {
    /// Worker slot + 1 announced before the thread's ring exists (the
    /// pool names its threads up front; the ring is only allocated on
    /// the first recorded event, so an instrumented build that never
    /// records never allocates).
    static WORKER_HINT: Cell<usize> = const { Cell::new(0) };
    static RING: OnceCell<Arc<Ring>> = const { OnceCell::new() };
}

fn register_ring() -> Arc<Ring> {
    let ring = Arc::new(Ring::new(WORKER_HINT.with(|c| c.get())));
    lock_registry().push(Arc::clone(&ring));
    ring
}

#[inline]
fn push_event(kind: u8, label: &'static str, value: u64) {
    if !RECORDING.load(Ordering::Relaxed) {
        return;
    }
    let t_ns = now_ns();
    RING.with(|cell| {
        cell.get_or_init(register_ring).push(Event { t_ns, value, label, kind });
    });
}

/// Scoped span handle: records an enter event at construction and an
/// exit event when dropped. Spans nest; pairing relies on drop order.
pub struct SpanGuard {
    label: &'static str,
}

impl SpanGuard {
    #[inline]
    pub fn new(label: &'static str) -> SpanGuard {
        push_event(K_ENTER, label, NO_VALUE);
        SpanGuard { label }
    }

    #[inline]
    pub fn with_value(label: &'static str, value: u64) -> SpanGuard {
        push_event(K_ENTER, label, if value == NO_VALUE { NO_VALUE - 1 } else { value });
        SpanGuard { label }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        push_event(K_EXIT, self.label, NO_VALUE);
    }
}

/// Adds `value` to the named counter.
#[inline]
pub fn add_counter(label: &'static str, value: u64) {
    push_event(K_COUNTER, label, value);
}

/// Names the calling thread's timeline track after a worker slot.
/// Cheap and callable whether or not a session is active.
pub fn set_worker(slot: usize) {
    WORKER_HINT.with(|c| c.set(slot + 1));
    RING.with(|cell| {
        if let Some(ring) = cell.get() {
            ring.worker.store(slot + 1, Ordering::Relaxed);
        }
    });
}

/// True while a recording session is active.
#[inline]
pub fn is_recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Begins a recording session: prunes rings whose threads have exited,
/// resets the survivors (and the metric shards), and opens the gate.
pub fn start() {
    let mut registry = lock_registry();
    // A ring whose owning thread is gone has strong_count == 1 (the
    // registry's own reference); keeping it would only accumulate dead
    // tracks and memory across sessions.
    registry.retain(|ring| Arc::strong_count(ring) > 1);
    for ring in registry.iter() {
        ring.dropped.store(0, Ordering::Relaxed);
        ring.len.store(0, Ordering::Release);
    }
    crate::metrics_runtime::reset();
    SESSION_T0.store(now_ns(), Ordering::Relaxed);
    RECORDING.store(true, Ordering::Release);
}

/// Ends the session and drains every ring into a [`Report`]. Tracks are
/// ordered workers-first (by slot), then unnamed threads.
pub fn stop() -> Report {
    RECORDING.store(false, Ordering::Release);
    let t1_ns = now_ns();
    let t0_ns = SESSION_T0.load(Ordering::Relaxed);
    let registry = lock_registry();

    let mut tracks = Vec::new();
    let mut dropped = 0u64;
    let mut unnamed = 0usize;
    for ring in registry.iter() {
        let (events, drops, worker) = ring.snapshot();
        dropped += drops as u64;
        if events.is_empty() {
            continue;
        }
        let (spans, counters) = pair_events(&events, t1_ns);
        let (name, worker_slot) = if worker > 0 {
            (format!("worker {}", worker - 1), Some(worker - 1))
        } else {
            unnamed += 1;
            (format!("thread {unnamed}"), None)
        };
        tracks.push(Track { name, worker: worker_slot, spans, counters });
    }
    tracks.sort_by_key(|t| (t.worker.is_none(), t.worker, t.name.clone()));
    Report { t0_ns, t1_ns, tracks, dropped }
}

/// Folds a thread's raw event list into completed spans (via a nesting
/// stack — guards guarantee LIFO order per thread) and counter events.
/// Unmatched enters (still open at session end, or whose exit was
/// dropped on overflow) are closed at `t_end`; unmatched exits (session
/// started mid-span) are ignored.
fn pair_events(events: &[Event], t_end: u64) -> (Vec<Span>, Vec<CounterEvent>) {
    let mut stack: Vec<(&'static str, u64, u64)> = Vec::new();
    let mut spans = Vec::new();
    let mut counters = Vec::new();
    for ev in events {
        match ev.kind {
            K_ENTER => stack.push((ev.label, ev.t_ns, ev.value)),
            K_EXIT => {
                if let Some((label, start_ns, value)) = stack.pop() {
                    spans.push(Span {
                        label,
                        start_ns,
                        dur_ns: ev.t_ns.saturating_sub(start_ns),
                        depth: stack.len() as u16,
                        value: (value != NO_VALUE).then_some(value),
                    });
                }
            }
            _ => counters.push(CounterEvent { label: ev.label, t_ns: ev.t_ns, value: ev.value }),
        }
    }
    while let Some((label, start_ns, value)) = stack.pop() {
        spans.push(Span {
            label,
            start_ns,
            dur_ns: t_end.saturating_sub(start_ns),
            depth: stack.len() as u16,
            value: (value != NO_VALUE).then_some(value),
        });
    }
    spans.sort_by_key(|s| (s.start_ns, s.depth));
    (spans, counters)
}

/// Sessions are global; tests (here and in `metrics_runtime`) that
/// record must not interleave.
#[cfg(test)]
pub(crate) fn tests_session_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session_lock() -> MutexGuard<'static, ()> {
        tests_session_lock()
    }

    #[test]
    fn spans_and_counters_round_trip() {
        let _serial = session_lock();
        start();
        {
            let _outer = crate::span!("outer");
            {
                let _inner = crate::span!("inner", 3);
            }
            crate::counter!("widgets", 5);
            crate::counter!("widgets", 7);
        }
        let report = stop();
        assert_eq!(report.tracks.len(), 1);
        let spans = &report.tracks[0].spans;
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.label == "outer").unwrap();
        let inner = spans.iter().find(|s| s.label == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.value, Some(3));
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        assert_eq!(report.counter_totals(), vec![("widgets", 12)]);
    }

    #[test]
    fn nothing_recorded_outside_sessions() {
        let _serial = session_lock();
        // Make sure no session is active, emit events, then check the
        // next session starts empty.
        let _ = stop();
        {
            let _g = crate::span!("ghost");
            crate::counter!("ghost.counter", 1);
        }
        start();
        let report = stop();
        let total_events: usize =
            report.tracks.iter().map(|t| t.spans.len() + t.counters.len()).sum();
        assert_eq!(total_events, 0);
    }

    #[test]
    fn worker_threads_become_named_tracks() {
        let _serial = session_lock();
        start();
        std::thread::scope(|scope| {
            for slot in 1..3usize {
                scope.spawn(move || {
                    set_worker(slot);
                    let _g = crate::span!("pool.batch");
                });
            }
            set_worker(0);
            let _g = crate::span!("pool.batch");
        });
        let report = stop();
        let workers: Vec<Option<usize>> = report.tracks.iter().map(|t| t.worker).collect();
        assert!(workers.contains(&Some(0)));
        assert!(workers.contains(&Some(1)));
        assert!(workers.contains(&Some(2)));
        // Workers-first ordering, ascending slots.
        assert_eq!(report.tracks[0].worker, Some(0));
        assert!(report.tracks.iter().all(|t| t.name.starts_with("worker ")));
    }

    #[test]
    fn sessions_reset_between_runs() {
        let _serial = session_lock();
        start();
        {
            let _g = crate::span!("first.session");
        }
        let first = stop();
        assert!(first.has_span("first.session"));
        start();
        {
            let _g = crate::span!("second.session");
        }
        let second = stop();
        assert!(second.has_span("second.session"));
        assert!(!second.has_span("first.session"));
    }

    #[test]
    fn open_spans_are_closed_at_session_end() {
        let _serial = session_lock();
        start();
        let guard = crate::span!("left.open");
        let report = stop();
        drop(guard); // exit lands after the gate closed; ignored
        assert!(report.has_span("left.open"));
        let track = &report.tracks[0];
        let span = track.spans.iter().find(|s| s.label == "left.open").unwrap();
        assert!(span.start_ns + span.dur_ns <= report.t1_ns);
    }
}
