use std::fmt;

/// Errors produced while reading a bitstream or byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The stream ended before the requested number of bits/bytes could be
    /// read. SPECK decoding treats this as the (legitimate) end of an
    /// embedded prefix; header parsing treats it as corruption.
    UnexpectedEof,
    /// A header field held a value that does not describe a valid stream
    /// (bad magic, impossible dimensions, ...). The message names the field.
    Corrupt(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnexpectedEof => write!(f, "unexpected end of bitstream"),
            Error::Corrupt(what) => write!(f, "corrupt stream: {what}"),
        }
    }
}

impl std::error::Error for Error {}
