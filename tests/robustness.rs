//! Failure-injection and robustness tests: hostile inputs must produce
//! clean errors (or valid decodes), never panics, across every
//! compressor; plus the paper's QMCPACK chunk-alignment scenario.

use sperr_compress_api::{Bound, Field, LossyCompressor};
use sperr_core::{Sperr, SperrConfig};
use sperr_datagen::{qmcpack_stack, SyntheticField};

/// Deterministic xorshift for fuzz positions.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[test]
fn bit_flip_fuzzing_never_panics() {
    let field = SyntheticField::S3dCh4.generate([16, 16, 16], 3);
    let t = field.tolerance_for_idx(12);
    let sperr = Sperr::new(SperrConfig::default());
    let sz = sperr_sz_like::SzLike::default();
    let zfp = sperr_zfp_like::ZfpLike::default();
    let mgard = sperr_mgard_like::MgardLike;
    let tthresh = sperr_tthresh_like::TthreshLike;

    let cases: Vec<(&dyn LossyCompressor, Bound)> = vec![
        (&sperr, Bound::Pwe(t)),
        (&sz, Bound::Pwe(t)),
        (&zfp, Bound::Pwe(t)),
        (&mgard, Bound::Pwe(t)),
        (&tthresh, Bound::Psnr(60.0)),
    ];
    let mut rng = Rng(0x5eed_cafe);
    for (comp, bound) in cases {
        let stream = comp.compress(&field, bound).unwrap();
        for _ in 0..40 {
            let mut bad = stream.clone();
            let pos = (rng.next() as usize) % bad.len();
            let bit = (rng.next() % 8) as u8;
            bad[pos] ^= 1 << bit;
            // Any Result is acceptable; a panic is a bug.
            let _ = comp.decompress(&bad);
        }
        // Truncations at random points, too.
        for _ in 0..20 {
            let cut = (rng.next() as usize) % (stream.len() + 1);
            let _ = comp.decompress(&stream[..cut]);
        }
    }
}

#[test]
fn decompress_random_garbage_never_panics() {
    let mut rng = Rng(42);
    let sperr = Sperr::new(SperrConfig::default());
    let sz = sperr_sz_like::SzLike::default();
    let zfp = sperr_zfp_like::ZfpLike::default();
    let mgard = sperr_mgard_like::MgardLike;
    let tthresh = sperr_tthresh_like::TthreshLike;
    let comps: Vec<&dyn LossyCompressor> = vec![&sperr, &sz, &zfp, &mgard, &tthresh];
    for len in [0usize, 1, 7, 64, 1000] {
        let garbage: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        for comp in &comps {
            let _ = comp.decompress(&garbage);
        }
    }
}

#[test]
fn qmcpack_stack_chunked_per_orbital() {
    // §VI-B: the stack is best compressed as individual volumes, which
    // SPERR achieves by setting the chunk size to one orbital (69²×115).
    let field = qmcpack_stack(3, 8);
    let t = field.tolerance_for_idx(18);
    let per_orbital = Sperr::new(SperrConfig {
        chunk_dims: [69, 69, 115],
        ..SperrConfig::default()
    });
    let (stream, stats) = per_orbital.compress_with_stats(&field, Bound::Pwe(t)).unwrap();
    assert_eq!(stats.num_chunks, 3, "one chunk per orbital");
    let rec = per_orbital.decompress(&stream).unwrap();
    assert!(sperr_metrics::max_pwe(&field.data, &rec.data) <= t);

    // The "less than ideal" monolithic layout still honours the bound.
    let mono = Sperr::new(SperrConfig {
        chunk_dims: [69, 69, 115 * 3],
        ..SperrConfig::default()
    });
    let (mono_stream, mono_stats) = mono.compress_with_stats(&field, Bound::Pwe(t)).unwrap();
    assert_eq!(mono_stats.num_chunks, 1);
    let mono_rec = mono.decompress(&mono_stream).unwrap();
    assert!(sperr_metrics::max_pwe(&field.data, &mono_rec.data) <= t);
    // Orbital-aligned chunking should not cost more than a few percent —
    // the orbitals are statistically independent, so nothing is lost by
    // cutting there (and parallelism is gained).
    assert!(
        (stream.len() as f64) < mono_stream.len() as f64 * 1.05,
        "per-orbital {} vs monolithic {}",
        stream.len(),
        mono_stream.len()
    );
}

#[test]
fn two_d_slices_through_all_pwe_compressors() {
    // nz == 1 must work everywhere (the paper compresses 2D slices too).
    let field = SyntheticField::Image2d.generate([64, 48, 1], 4);
    let t = field.tolerance_for_idx(10);
    let sperr = Sperr::new(SperrConfig::default());
    let sz = sperr_sz_like::SzLike::default();
    let zfp = sperr_zfp_like::ZfpLike::default();
    let mgard = sperr_mgard_like::MgardLike;
    for comp in [&sperr as &dyn LossyCompressor, &sz, &zfp, &mgard] {
        let stream = comp.compress(&field, Bound::Pwe(t)).unwrap();
        let rec = comp.decompress(&stream).unwrap();
        let e = sperr_metrics::max_pwe(&field.data, &rec.data);
        let bound = if comp.name() == "MGARD-like" {
            sperr_mgard_like::MgardLike::hard_error_bound(field.dims, t)
        } else {
            t
        };
        assert!(e <= bound, "{}: {e} > {bound}", comp.name());
    }
}

#[test]
fn extreme_values_handled() {
    // Huge magnitudes, tiny magnitudes, mixed signs.
    let mut data = vec![0.0f64; 512];
    for (i, v) in data.iter_mut().enumerate() {
        *v = match i % 4 {
            0 => 1e30,
            1 => -1e30,
            2 => 1e-30,
            _ => 0.0,
        };
    }
    let field = Field::new([8, 8, 8], data);
    let t = field.range() / 1e6;
    let sperr = Sperr::new(SperrConfig::default());
    let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
    let rec = sperr.decompress(&stream).unwrap();
    assert!(sperr_metrics::max_pwe(&field.data, &rec.data) <= t);
}

// ---------------------------------------------------------------------------
// Structured mutation campaign: deterministic corruption of specific stream
// regions (header fields, chunk table, payloads, truncations, bit flips)
// across every compressor. No input may panic; for SPERR v2 streams the
// checksums must additionally catch every single-byte mutation.
// ---------------------------------------------------------------------------

/// All five compressors paired with a bound each supports, plus a stream
/// compressed from the same small field.
fn mutation_corpus() -> Vec<(Box<dyn LossyCompressor>, Vec<u8>)> {
    let field = SyntheticField::S3dCh4.generate([16, 16, 16], 3);
    let t = field.tolerance_for_idx(12);
    let comps: Vec<(Box<dyn LossyCompressor>, Bound)> = vec![
        (Box::new(Sperr::new(SperrConfig::default())), Bound::Pwe(t)),
        (Box::new(sperr_sz_like::SzLike::default()), Bound::Pwe(t)),
        (Box::new(sperr_zfp_like::ZfpLike::default()), Bound::Pwe(t)),
        (Box::new(sperr_mgard_like::MgardLike), Bound::Pwe(t)),
        (Box::new(sperr_tthresh_like::TthreshLike), Bound::Psnr(60.0)),
    ];
    comps
        .into_iter()
        .map(|(c, b)| {
            let stream = c.compress(&field, b).unwrap();
            (c, stream)
        })
        .collect()
}

#[test]
fn mutation_campaign_header_fields() {
    // Class 1: header-field mutations. The first bytes of every format hold
    // magic/version/precision/dims; rewrite each with adversarial patterns.
    for (comp, stream) in mutation_corpus() {
        let header_len = stream.len().min(64);
        for pos in 0..header_len {
            for pattern in [0x00u8, 0xFF, stream[pos] ^ 0x01, stream[pos] ^ 0x80] {
                let mut bad = stream.clone();
                bad[pos] = pattern;
                let _ = comp.decompress(&bad); // must not panic
            }
        }
    }
}

#[test]
fn mutation_campaign_chunk_table_and_payload() {
    // Classes 2+3: for the SPERR container the chunk table and payload
    // regions are locatable via inspect(); damage each region separately.
    // With v2+ checksums, EVERY single-byte corruption must be caught:
    // the header CRC covers flag..table (including the v3 chunk index),
    // per-chunk CRCs cover the payloads.
    let field = SyntheticField::S3dCh4.generate([16, 16, 16], 3);
    let t = field.tolerance_for_idx(12);
    let sperr = Sperr::new(SperrConfig {
        lossless: false, // raw container: regions sit at known offsets
        ..SperrConfig::default()
    });
    let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
    let info = sperr.inspect(&stream).unwrap();
    assert_eq!(info.version, sperr_core::CONTAINER_VERSION);
    let payload_start = 1 + info.payload_offset; // +1 outer flag byte
    assert!(payload_start < stream.len());
    for pos in 0..stream.len() {
        let mut bad = stream.clone();
        bad[pos] ^= 0xFF;
        let region = if pos < payload_start { "header/table" } else { "payload" };
        assert!(
            sperr.decompress(&bad).is_err(),
            "byte {pos} ({region}) corruption went undetected"
        );
    }
}

#[test]
fn mutation_campaign_truncation_every_boundary() {
    // Class 4: truncation at every byte boundary. No compressor may panic;
    // SPERR must report a typed error for every proper prefix.
    for (comp, stream) in mutation_corpus() {
        for cut in 0..stream.len() {
            let _ = comp.decompress(&stream[..cut]);
        }
    }
    let field = SyntheticField::S3dCh4.generate([12, 12, 12], 5);
    let sperr = Sperr::new(SperrConfig { lossless: false, ..SperrConfig::default() });
    let stream = sperr
        .compress(&field, Bound::Pwe(field.tolerance_for_idx(10)))
        .unwrap();
    for cut in 0..stream.len() {
        assert!(
            sperr.decompress(&stream[..cut]).is_err(),
            "prefix of {cut} bytes decoded without error"
        );
    }
}

#[test]
fn mutation_campaign_dense_bit_flips() {
    // Class 5: every bit of the header region, single-bit flips. Denser than
    // the random fuzzing above and fully deterministic.
    for (comp, stream) in mutation_corpus() {
        let span = stream.len().min(48);
        for pos in 0..span {
            for bit in 0..8 {
                let mut bad = stream.clone();
                bad[pos] ^= 1 << bit;
                let _ = comp.decompress(&bad);
            }
        }
    }
}

#[test]
fn verify_detects_corruption_without_decoding() {
    let field = SyntheticField::S3dCh4.generate([32, 16, 16], 9);
    let t = field.tolerance_for_idx(14);
    let sperr = Sperr::new(SperrConfig {
        chunk_dims: [16, 16, 16],
        lossless: false,
        ..SperrConfig::default()
    });
    let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
    let info = sperr.inspect(&stream).unwrap();
    assert_eq!(info.n_chunks, 2);

    let clean = sperr.verify(&stream).unwrap();
    assert!(clean.checksummed && clean.is_ok(), "clean stream: {clean:?}");

    // Corrupt one byte inside chunk 1's payload.
    let mut bad = stream.clone();
    let target = 1 + info.payload_offset + info.chunk_payload_sizes[0] + 3;
    bad[target] ^= 0x40;
    let report = sperr.verify(&bad).unwrap();
    assert_eq!(report.corrupt_chunks, vec![1]);
    assert!(!report.is_ok());
}

#[test]
fn resilient_decode_recovers_undamaged_chunks() {
    // The acceptance scenario: a multi-chunk archive with one damaged chunk
    // must still yield every other chunk bit-identical, with the report
    // flagging exactly the damaged one.
    let field = SyntheticField::NyxDarkMatterDensity.generate([48, 16, 16], 2);
    let t = field.tolerance_for_idx(16);
    let sperr = Sperr::new(SperrConfig {
        chunk_dims: [16, 16, 16],
        lossless: false,
        ..SperrConfig::default()
    });
    let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
    let info = sperr.inspect(&stream).unwrap();
    assert_eq!(info.n_chunks, 3);
    let clean = sperr.decompress(&stream).unwrap();

    // Damage the middle chunk's payload.
    let mut bad = stream.clone();
    let target = 1 + info.payload_offset + info.chunk_payload_sizes[0] + 1;
    bad[target] ^= 0xFF;
    assert!(sperr.decompress(&bad).is_err(), "strict decode must reject");

    let (rec, report) = sperr.decompress_resilient(&bad).unwrap();
    assert_eq!(report.statuses.len(), 3);
    assert_eq!(report.failed_chunks(), vec![1]);
    assert_eq!(report.statuses[0], sperr_core::ChunkStatus::Ok);
    assert_eq!(report.statuses[2], sperr_core::ChunkStatus::Ok);

    // Chunks 0 (x in 0..16) and 2 (x in 32..48) are bit-identical to the
    // clean decode; chunk 1 is neutral-filled.
    let [nx, ny, nz] = field.dims;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = x + nx * (y + ny * z);
                if x / 16 == 1 {
                    assert_eq!(rec.data[i], 0.0, "damaged chunk must be neutral");
                } else {
                    assert_eq!(rec.data[i].to_bits(), clean.data[i].to_bits());
                }
            }
        }
    }

    // On an undamaged stream the resilient path is equivalent to strict.
    let (rec2, report2) = sperr.decompress_resilient(&stream).unwrap();
    assert!(report2.all_ok());
    assert_eq!(rec2.data, clean.data);
}

#[test]
fn nan_free_output_for_finite_input() {
    let field = SyntheticField::NyxDarkMatterDensity.generate([12, 12, 12], 6);
    let sperr = Sperr::new(SperrConfig::default());
    for bound in [
        Bound::Pwe(field.tolerance_for_idx(15)),
        Bound::Bpp(1.0),
        Bound::Psnr(60.0),
    ] {
        let stream = sperr.compress(&field, bound).unwrap();
        let rec = sperr.decompress(&stream).unwrap();
        assert!(rec.data.iter().all(|v| v.is_finite()), "{bound:?}");
    }
}
