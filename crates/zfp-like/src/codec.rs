//! Embedded bitplane coding of transformed blocks — a faithful port of
//! ZFP's `encode_ints`/`decode_ints` group-testing loops.

use crate::block::BLOCK_SIZE;
use sperr_bitstream::{BitReader, BitWriter, Error};

/// Encodes the 64 negabinary coefficients (already in sequency order) from
/// bitplane 63 down to `kmin`, spending at most `bits`. Returns bits used.
pub fn encode_ints(data: &[u64; BLOCK_SIZE], out: &mut BitWriter, max_bits: usize, kmin: u32) -> usize {
    let start = out.len_bits();
    let mut bits = max_bits;
    let mut n = 0usize; // coefficients known significant so far
    let mut k = 64u32;
    while bits > 0 && k > kmin {
        k -= 1;
        // Step 1: extract bitplane k.
        let mut x = 0u64;
        for (i, &d) in data.iter().enumerate() {
            x |= ((d >> k) & 1) << i;
        }
        // Step 2: first n bits verbatim (coefficients already significant).
        let m = n.min(bits);
        bits -= m;
        out.put_bits(x, m as u32);
        x = if m >= 64 { 0 } else { x >> m };
        // Step 3: unary run-length encode the remainder (group testing).
        while n < BLOCK_SIZE && bits > 0 {
            bits -= 1;
            let any = x != 0;
            out.put_bit(any);
            if !any {
                break;
            }
            while n < BLOCK_SIZE - 1 && bits > 0 {
                bits -= 1;
                let b = (x & 1) == 1;
                out.put_bit(b);
                if b {
                    break;
                }
                x >>= 1;
                n += 1;
            }
            x >>= 1;
            n += 1;
        }
    }
    out.len_bits() - start
}

/// Mirror of [`encode_ints`]; returns the reconstructed negabinary values
/// (bits below the decoded planes are zero).
pub fn decode_ints(
    input: &mut BitReader<'_>,
    max_bits: usize,
    kmin: u32,
) -> Result<[u64; BLOCK_SIZE], Error> {
    let mut data = [0u64; BLOCK_SIZE];
    let mut bits = max_bits;
    let mut n = 0usize;
    let mut k = 64u32;
    while bits > 0 && k > kmin {
        k -= 1;
        let m = n.min(bits);
        bits -= m;
        let mut x = input.get_bits(m as u32)?;
        while n < BLOCK_SIZE && bits > 0 {
            bits -= 1;
            if !input.get_bit()? {
                break;
            }
            while n < BLOCK_SIZE - 1 && bits > 0 {
                bits -= 1;
                if input.get_bit()? {
                    break;
                }
                n += 1;
            }
            x |= 1u64 << n;
            n += 1;
        }
        // Deposit plane k.
        for (i, d) in data.iter_mut().enumerate() {
            *d |= ((x >> i) & 1) << k;
        }
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::int_to_negabinary;

    fn roundtrip(data: &[u64; BLOCK_SIZE], max_bits: usize, kmin: u32) -> [u64; BLOCK_SIZE] {
        let mut w = BitWriter::new();
        encode_ints(data, &mut w, max_bits, kmin);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        decode_ints(&mut r, max_bits, kmin).unwrap()
    }

    #[test]
    fn lossless_with_full_budget() {
        let data: [u64; BLOCK_SIZE] =
            std::array::from_fn(|i| int_to_negabinary((i as i64 - 32) * 1_000_003));
        let rec = roundtrip(&data, usize::MAX / 2, 0);
        assert_eq!(rec, data);
    }

    #[test]
    fn kmin_zeroes_low_planes() {
        let data: [u64; BLOCK_SIZE] = std::array::from_fn(|i| (i as u64) * 0x1234567);
        let kmin = 20;
        let rec = roundtrip(&data, usize::MAX / 2, kmin);
        for (a, b) in data.iter().zip(&rec) {
            assert_eq!(b & !((1u64 << kmin) - 1), a & !((1u64 << kmin) - 1));
            assert_eq!(b & ((1u64 << kmin) - 1), 0);
        }
    }

    #[test]
    fn budget_truncation_keeps_top_planes() {
        let data: [u64; BLOCK_SIZE] = std::array::from_fn(|i| {
            if i == 5 {
                0xFFFF_0000_0000
            } else {
                (i as u64) << 8
            }
        });
        let rec = roundtrip(&data, 200, 0);
        // The dominant coefficient's top bits must survive a tight budget.
        assert_eq!(rec[5] >> 40, data[5] >> 40);
    }

    #[test]
    fn all_zero_block_is_cheap() {
        let data = [0u64; BLOCK_SIZE];
        let mut w = BitWriter::new();
        let used = encode_ints(&data, &mut w, usize::MAX / 2, 0);
        // One group-test zero bit per plane.
        assert_eq!(used, 64);
    }

    #[test]
    fn exact_budget_agreement_encoder_decoder() {
        // Whatever the budget, decoder must consume exactly what encoder
        // produced (no drift), for many budgets.
        let data: [u64; BLOCK_SIZE] =
            std::array::from_fn(|i| int_to_negabinary(((i * i) as i64 - 900) * 77));
        for budget in [1usize, 7, 33, 100, 333, 1000, 3000] {
            let mut w = BitWriter::new();
            let used = encode_ints(&data, &mut w, budget, 0);
            assert!(used <= budget);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            // Decoder budget counters mirror the encoder's, so with the
            // same budget the (byte-padded) stream always suffices.
            let rec = decode_ints(&mut r, budget, 0).unwrap();
            assert_eq!(r.position_bits(), used, "decoder consumed a different bit count");
            // Reconstruction error shrinks with budget: top bits match at
            // generous budgets.
            if budget >= 3000 {
                assert_eq!(rec, data);
            }
        }
    }
}
