//! Gaussian random fields by spectral synthesis.
//!
//! Scientific simulation outputs are characterized (for compression
//! purposes) by their spectral content: turbulence fields follow power-law
//! spectra, combustion fields are smooth with sharp fronts, cosmological
//! densities are log-normal. We synthesize the base randomness as a GRF
//! with prescribed isotropic power spectrum `P(k) ∝ (k + k0)^(−β)` —
//! k-space is filled with iid complex Gaussians scaled by `√P(k)` and
//! inverse-FFT'd; the real part is a real-valued GRF.

use crate::fft::{fft_3d, Complex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Standard-normal sample via Box–Muller (rand's distributions crate is
/// not on the offline allowlist).
pub(crate) fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Synthesizes a GRF with spectrum `P(k) ∝ (k + k0)^(−beta)` on `dims`
/// (any sizes — the FFT grid is the per-axis next power of two, cropped),
/// normalized to zero mean and unit variance.
pub fn gaussian_random_field(dims: [usize; 3], beta: f64, k0: f64, seed: u64) -> Vec<f64> {
    let grid = [
        dims[0].next_power_of_two().max(2),
        dims[1].next_power_of_two().max(2),
        dims[2].next_power_of_two().max(1),
    ];
    let gn = grid[0] * grid[1] * grid[2];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut spec = vec![Complex::default(); gn];

    // Fill k-space: amplitude ~ sqrt(P(k)) with wrapped frequencies.
    let half = [grid[0] / 2, grid[1] / 2, grid[2] / 2];
    let mut idx = 0usize;
    for kz in 0..grid[2] {
        let fz = signed_freq(kz, grid[2], half[2]);
        for ky in 0..grid[1] {
            let fy = signed_freq(ky, grid[1], half[1]);
            for kx in 0..grid[0] {
                let fx = signed_freq(kx, grid[0], half[0]);
                let k = ((fx * fx + fy * fy + fz * fz) as f64).sqrt();
                let amp = if k == 0.0 {
                    0.0 // zero mean
                } else {
                    (k + k0).powf(-beta / 2.0)
                };
                spec[idx] = Complex::new(gaussian(&mut rng) * amp, gaussian(&mut rng) * amp);
                idx += 1;
            }
        }
    }
    fft_3d(&mut spec, grid, true);

    // Crop to the requested dims and normalize to zero mean, unit variance.
    let n = dims[0] * dims[1] * dims[2];
    let mut out = Vec::with_capacity(n);
    for z in 0..dims[2] {
        for y in 0..dims[1] {
            for x in 0..dims[0] {
                out.push(spec[x + grid[0] * (y + grid[1] * z)].re);
            }
        }
    }
    let mean = out.iter().sum::<f64>() / n as f64;
    let var = out.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    let scale = if var > 0.0 { 1.0 / var.sqrt() } else { 1.0 };
    for v in out.iter_mut() {
        *v = (*v - mean) * scale;
    }
    out
}

fn signed_freq(k: usize, n: usize, half: usize) -> i64 {
    if k <= half {
        k as i64
    } else {
        k as i64 - n as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_mean_and_variance() {
        let f = gaussian_random_field([24, 24, 24], 3.0, 1.0, 42);
        let n = f.len() as f64;
        let mean = f.iter().sum::<f64>() / n;
        let var = f.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gaussian_random_field([8, 8, 8], 2.5, 1.0, 7);
        let b = gaussian_random_field([8, 8, 8], 2.5, 1.0, 7);
        assert_eq!(a, b);
        let c = gaussian_random_field([8, 8, 8], 2.5, 1.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn steeper_spectrum_is_smoother() {
        // Mean squared first-difference (roughness) must drop as beta rises.
        let rough = gaussian_random_field([32, 32, 32], 1.0, 1.0, 3);
        let smooth = gaussian_random_field([32, 32, 32], 5.0, 1.0, 3);
        let msd = |f: &[f64]| -> f64 {
            f.windows(2).map(|w| (w[1] - w[0]) * (w[1] - w[0])).sum::<f64>() / (f.len() - 1) as f64
        };
        assert!(
            msd(&smooth) < msd(&rough) * 0.5,
            "smooth {} vs rough {}",
            msd(&smooth),
            msd(&rough)
        );
    }

    #[test]
    fn non_pow2_dims_work() {
        let f = gaussian_random_field([5, 7, 3], 3.0, 1.0, 1);
        assert_eq!(f.len(), 105);
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
