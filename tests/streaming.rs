//! Streaming-pipeline integration tests: the public `compress_stream` /
//! `decompress_stream` API end to end, container edge cases fed through
//! the streaming reader (a corrupt header must produce a typed error
//! before it can drive any allocation), and — with the `telemetry`
//! feature — proof that the staged pipeline actually overlaps work
//! across pool workers.

use sperr_compress_api::{Bound, Field, LossyCompressor, Precision};
use sperr_core::{Sperr, SperrConfig, SperrError, STAGE_CONTAINER};
use sperr_datagen::SyntheticField;

fn sperr(threads: usize) -> Sperr {
    Sperr::new(SperrConfig {
        chunk_dims: [16, 16, 16],
        num_threads: threads,
        lossless: false, // OUTER_RAW framing: container bytes start at offset 1
        ..SperrConfig::default()
    })
}

fn raw_f64(field: &Field) -> Vec<u8> {
    field.data.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// A small in-memory stream for header-tampering tests: compressed with
/// the v2 path, then downgraded to the CRC-free v1 container so header
/// edits reach the parser instead of tripping the v2 header checksum.
fn v1_stream() -> (Sperr, Vec<u8>) {
    let field = SyntheticField::MirandaDensity.generate([24, 20, 16], 3);
    let t = field.range() * 1e-3;
    let s = sperr(1);
    let stream = s.compress(&field, Bound::Pwe(t)).unwrap();
    let v1 = s.downgrade_to_v1(&stream).unwrap();
    assert_eq!(v1[0], 0, "expected OUTER_RAW framing");
    (s, v1)
}

fn stream_decode_err(s: &Sperr, bytes: &[u8]) -> SperrError {
    let mut out = Vec::new();
    s.decompress_stream(bytes, &mut out, None)
        .expect_err("tampered container must not decode")
}

// Container-relative byte offsets (stream offset = +1 for the outer
// framing byte): magic 0..4, version 4, mode 5, kernel 6, precision 7,
// dims 8..20, bound 20..28, chunk_dims 28..40, n_chunks 40..44.
const STREAM_DIMS: usize = 1 + 8;
const STREAM_CHUNK_DIMS: usize = 1 + 28;
const STREAM_N_CHUNKS: usize = 1 + 40;

#[test]
fn streaming_roundtrip_matches_in_memory_api() {
    let dims = [24usize, 20, 16];
    let field = SyntheticField::S3dTemperature.generate(dims, 9);
    let t = field.range() * 1e-3;
    let s = sperr(2);

    let reference = s.compress(&field, Bound::Pwe(t)).unwrap();
    let mut compressed = Vec::new();
    let report = s
        .compress_stream(&raw_f64(&field)[..], &mut compressed, dims, Precision::Double, Bound::Pwe(t))
        .unwrap();
    assert_eq!(compressed, reference, "streaming output must be byte-identical");
    assert_eq!(report.n_chunks, 4);

    let mut decoded = Vec::new();
    s.decompress_stream(&compressed[..], &mut decoded, None).unwrap();
    let restored = s.decompress(&reference).unwrap();
    assert_eq!(decoded, raw_f64(&restored), "streaming decode must match in-memory decode");
}

#[test]
fn zero_chunk_container_is_typed_error() {
    let (s, mut v1) = v1_stream();
    v1[STREAM_N_CHUNKS..STREAM_N_CHUNKS + 4].fill(0);
    match stream_decode_err(&s, &v1) {
        SperrError::Codec { stage, source, .. } => {
            assert_eq!(stage, STAGE_CONTAINER);
            let msg = source.to_string();
            assert!(msg.contains("chunk count 0"), "unexpected error: {msg}");
        }
        other => panic!("expected typed container error, got {other:?}"),
    }
}

#[test]
fn chunk_table_past_end_of_stream_is_typed_error() {
    // Header declares a full chunk grid but the stream ends right after
    // the chunk count: the declared table cannot physically fit, and the
    // parser must say so before reserving anything sized by the count.
    let (s, v1) = v1_stream();
    let truncated = &v1[..STREAM_N_CHUNKS + 4];
    match stream_decode_err(&s, truncated) {
        SperrError::Codec { stage, source, .. } => {
            assert_eq!(stage, STAGE_CONTAINER);
            let msg = source.to_string();
            assert!(
                msg.contains("chunk table extends past end of stream"),
                "unexpected error: {msg}"
            );
        }
        other => panic!("expected typed truncation error, got {other:?}"),
    }
}

#[test]
fn oversized_chunk_grid_is_limit_error_without_allocation() {
    // dims 2048×2048×2 with 1³ chunks declares an 8.4M-chunk grid —
    // over the 2^22 limit, but a volume small enough to pass the
    // element-count check. The parser must reject on the *declared*
    // grid arithmetic, never by materializing the grid.
    let (s, mut v1) = v1_stream();
    for (i, d) in [2048u32, 2048, 2].iter().enumerate() {
        v1[STREAM_DIMS + 4 * i..STREAM_DIMS + 4 * i + 4].copy_from_slice(&d.to_le_bytes());
    }
    for i in 0..3 {
        v1[STREAM_CHUNK_DIMS + 4 * i..STREAM_CHUNK_DIMS + 4 * i + 4]
            .copy_from_slice(&1u32.to_le_bytes());
    }
    match stream_decode_err(&s, &v1) {
        SperrError::Codec { stage, source, .. } => {
            assert_eq!(stage, STAGE_CONTAINER);
            let msg = source.to_string();
            assert!(msg.contains("exceeds the"), "unexpected error: {msg}");
        }
        other => panic!("expected typed limit error, got {other:?}"),
    }
}

/// Tentpole acceptance: with telemetry compiled in, a streaming
/// compression's worker timelines must show stages genuinely
/// overlapping — at least two pool workers with recorded spans, and at
/// least one pair of spans from different workers concurrent in wall
/// time. Runtime-gated so the default (telemetry-off) test run skips it.
#[test]
fn streaming_worker_timelines_overlap() {
    if !sperr_telemetry::is_enabled() {
        return;
    }
    let dims = [32usize, 32, 32]; // 8 chunks of 16³ across 4 workers
    let field = SyntheticField::MirandaPressure.generate(dims, 11);
    let t = field.range() * 1e-4;
    let s = sperr(4);

    sperr_telemetry::start();
    let mut out = Vec::new();
    s.compress_stream(&raw_f64(&field)[..], &mut out, dims, Precision::Double, Bound::Pwe(t))
        .unwrap();
    let report = sperr_telemetry::stop();

    let busy: Vec<_> = report
        .tracks
        .iter()
        .filter(|tr| tr.worker.is_some() && !tr.spans.is_empty())
        .collect();
    assert!(
        busy.len() >= 2,
        "streaming run used {} busy worker track(s); expected overlap across >= 2",
        busy.len()
    );
    let overlapping = busy.iter().enumerate().any(|(i, a)| {
        busy.iter().skip(i + 1).any(|b| {
            a.spans.iter().any(|sa| {
                b.spans.iter().any(|sb| {
                    sa.start_ns < sb.start_ns + sb.dur_ns && sb.start_ns < sa.start_ns + sa.dur_ns
                })
            })
        })
    });
    assert!(overlapping, "no concurrent spans across worker timelines: stages never overlapped");
}
