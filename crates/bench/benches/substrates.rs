//! Criterion micro-benchmarks of the substrate crates: wavelet transform
//! throughput, SPECK coding, the outlier coder, and the lossless codec —
//! regression tracking below the whole-pipeline level.

use criterion::{criterion_group, criterion_main, Criterion};
use sperr_datagen::SyntheticField;
use sperr_outlier::Outlier;
use sperr_speck::Termination;
use sperr_wavelet::{forward_3d, inverse_3d, levels_for_dims, Kernel};
use std::hint::black_box;

fn bench_wavelet(c: &mut Criterion) {
    let dims = [64usize, 64, 64];
    let field = SyntheticField::MirandaPressure.generate(dims, 1);
    let levels = levels_for_dims(dims);
    let mut group = c.benchmark_group("wavelet_64cubed");
    group.sample_size(20);
    for kernel in [Kernel::Cdf97, Kernel::Cdf53, Kernel::Haar] {
        group.bench_function(format!("forward_{}", kernel.name().replace([' ', '/'], "_")), |b| {
            b.iter(|| {
                let mut data = field.data.clone();
                forward_3d(&mut data, dims, levels, kernel);
                black_box(data[0])
            })
        });
    }
    group.bench_function("roundtrip_CDF_9_7", |b| {
        b.iter(|| {
            let mut data = field.data.clone();
            forward_3d(&mut data, dims, levels, Kernel::Cdf97);
            inverse_3d(&mut data, dims, levels, Kernel::Cdf97);
            black_box(data[0])
        })
    });
    group.finish();
}

fn bench_speck(c: &mut Criterion) {
    let dims = [64usize, 64, 64];
    let field = SyntheticField::MirandaPressure.generate(dims, 1);
    let levels = levels_for_dims(dims);
    let mut coeffs = field.data.clone();
    forward_3d(&mut coeffs, dims, levels, Kernel::Cdf97);
    let q = field.range() * f64::exp2(-20.0) * 1.5;
    let mut group = c.benchmark_group("speck_64cubed_idx20");
    group.sample_size(10);
    group.bench_function("encode", |b| {
        b.iter(|| black_box(sperr_speck::encode(&coeffs, dims, q, Termination::Quality).bits_used))
    });
    let enc = sperr_speck::encode(&coeffs, dims, q, Termination::Quality);
    group.bench_function("decode", |b| {
        b.iter(|| {
            black_box(sperr_speck::decode::<f64, 3>(&enc.stream, dims, q, enc.num_planes).unwrap().len())
        })
    });
    group.finish();
}

fn bench_outlier(c: &mut Criterion) {
    let n = 1 << 20;
    let t = 1.0;
    let outliers: Vec<Outlier> = (0..10_000)
        .map(|i| Outlier {
            pos: (i * 104729) % n,
            corr: (1.1 + (i % 13) as f64 * 0.2) * if i % 2 == 0 { 1.0 } else { -1.0 },
        })
        .collect();
    let mut group = c.benchmark_group("outlier_10k_of_1M");
    group.sample_size(20);
    group.bench_function("encode", |b| {
        b.iter(|| black_box(sperr_outlier::encode(&outliers, n, t).bits_used))
    });
    let enc = sperr_outlier::encode(&outliers, n, t);
    group.bench_function("decode", |b| {
        b.iter(|| black_box(sperr_outlier::decode(&enc.stream, n, t, enc.max_n).unwrap().len()))
    });
    group.finish();
}

fn bench_lossless(c: &mut Criterion) {
    // Container-like bytes: headers + coder output.
    let mut data = Vec::new();
    for chunk in 0..32u64 {
        data.extend_from_slice(&[0u8; 26]);
        for i in 0..8192u64 {
            data.push(((i.wrapping_mul(2654435761)).wrapping_add(chunk) >> 13) as u8);
        }
    }
    let mut group = c.benchmark_group("lossless_260KiB");
    group.sample_size(20);
    group.bench_function("compress", |b| {
        b.iter(|| black_box(sperr_lossless::compress(&data).len()))
    });
    let packed = sperr_lossless::compress(&data);
    group.bench_function("decompress", |b| {
        b.iter(|| black_box(sperr_lossless::decompress(&packed).unwrap().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_wavelet, bench_speck, bench_outlier, bench_lossless);
criterion_main!(benches);
