//! Tiny hand-rolled argument parser (no external CLI crates on the
//! offline allowlist): `--key value` pairs plus boolean `--flag`s, with
//! typed accessors and error messages naming the offending option.

use std::collections::HashMap;

/// Parsed arguments: option map plus positional words.
#[derive(Debug, Default)]
pub struct Args {
    options: HashMap<String, String>,
    flags: Vec<String>,
    positional: Vec<String>,
}

/// Option names that take no value.
const BOOLEAN_FLAGS: &[&str] =
    &["no-lossless", "help", "quiet", "verify", "verbose", "stats", "stream", "resilient", "json"];

impl Args {
    /// Parses raw argv words (without the program/subcommand names).
    pub fn parse(words: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut i = 0;
        while i < words.len() {
            let w = &words[i];
            if let Some(name) = w.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&name) {
                    args.flags.push(name.to_string());
                    i += 1;
                } else {
                    let value = words
                        .get(i + 1)
                        .ok_or_else(|| format!("option --{name} needs a value"))?;
                    if args.options.insert(name.to_string(), value.clone()).is_some() {
                        return Err(format!("option --{name} given twice"));
                    }
                    i += 2;
                }
            } else {
                args.positional.push(w.clone());
                i += 1;
            }
        }
        Ok(args)
    }

    /// Required string option.
    pub fn req(&self, name: &str) -> Result<&str, String> {
        self.options
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{name}"))
    }

    /// Optional string option.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Boolean flag presence.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Optional `f64` option.
    pub fn opt_f64(&self, name: &str) -> Result<Option<f64>, String> {
        self.opt(name)
            .map(|v| v.parse::<f64>().map_err(|_| format!("--{name}: not a number: {v}")))
            .transpose()
    }

    /// Optional `usize` option.
    pub fn opt_usize(&self, name: &str) -> Result<Option<usize>, String> {
        self.opt(name)
            .map(|v| v.parse::<usize>().map_err(|_| format!("--{name}: not an integer: {v}")))
            .transpose()
    }

    /// Required `NX,NY[,NZ]` dimension triple.
    pub fn req_dims(&self, name: &str) -> Result<[usize; 3], String> {
        parse_dims(self.req(name)?).map_err(|e| format!("--{name}: {e}"))
    }

    /// Optional dimension triple.
    pub fn opt_dims(&self, name: &str) -> Result<Option<[usize; 3]>, String> {
        self.opt(name)
            .map(|v| parse_dims(v).map_err(|e| format!("--{name}: {e}")))
            .transpose()
    }

    /// Optional voxel-region option (`X0:X1,Y0:Y1,Z0:Z1`).
    pub fn opt_region(&self, name: &str) -> Result<Option<([usize; 3], [usize; 3])>, String> {
        self.opt(name)
            .map(|v| parse_region(v).map_err(|e| format!("--{name}: {e}")))
            .transpose()
    }

    /// Unconsumed positional words (should be empty for our commands).
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

/// Parses `NX,NY[,NZ]` (missing NZ defaults to 1).
pub fn parse_dims(s: &str) -> Result<[usize; 3], String> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.is_empty() || parts.len() > 3 {
        return Err(format!("expected NX,NY[,NZ], got {s}"));
    }
    let mut dims = [1usize; 3];
    for (i, p) in parts.iter().enumerate() {
        dims[i] = p
            .trim()
            .parse::<usize>()
            .map_err(|_| format!("bad dimension {p}"))?;
        if dims[i] == 0 {
            return Err("dimensions must be positive".into());
        }
    }
    Ok(dims)
}

/// Parses `X0:X1,Y0:Y1,Z0:Z1` — half-open voxel ranges per axis, lower
/// bound inclusive, upper exclusive. Axes left out default to `0:1`
/// (so a 2D slice can be named `X0:X1,Y0:Y1`). Returns `(lo, hi)`.
pub fn parse_region(s: &str) -> Result<([usize; 3], [usize; 3]), String> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.is_empty() || parts.len() > 3 {
        return Err(format!("expected X0:X1,Y0:Y1,Z0:Z1, got {s}"));
    }
    let mut lo = [0usize; 3];
    let mut hi = [1usize; 3];
    for (i, p) in parts.iter().enumerate() {
        let Some((a, b)) = p.split_once(':') else {
            return Err(format!("axis range {p} is not of the form LO:HI"));
        };
        lo[i] = a.trim().parse::<usize>().map_err(|_| format!("bad coordinate {a}"))?;
        hi[i] = b.trim().parse::<usize>().map_err(|_| format!("bad coordinate {b}"))?;
        if hi[i] <= lo[i] {
            return Err(format!("axis range {p} is empty (upper bound is exclusive)"));
        }
    }
    Ok((lo, hi))
}

/// Scalar element type of raw files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarType {
    F32,
    F64,
}

/// Parses `--type f32|f64`.
pub fn parse_type(s: &str) -> Result<ScalarType, String> {
    match s {
        "f32" | "float" | "single" => Ok(ScalarType::F32),
        "f64" | "double" => Ok(ScalarType::F64),
        _ => Err(format!("unknown scalar type {s} (use f32 or f64)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(s: &[&str]) -> Vec<String> {
        s.iter().map(|w| w.to_string()).collect()
    }

    #[test]
    fn parses_options_and_flags() {
        let a = Args::parse(&words(&["--dims", "8,8,8", "--pwe", "0.5", "--no-lossless"]))
            .unwrap();
        assert_eq!(a.req("dims").unwrap(), "8,8,8");
        assert_eq!(a.opt_f64("pwe").unwrap(), Some(0.5));
        assert!(a.flag("no-lossless"));
        assert!(!a.flag("quiet"));
        assert!(a.positional().is_empty());
    }

    #[test]
    fn missing_value_is_error() {
        assert!(Args::parse(&words(&["--dims"])).is_err());
    }

    #[test]
    fn duplicate_option_is_error() {
        assert!(Args::parse(&words(&["--pwe", "1", "--pwe", "2"])).is_err());
    }

    #[test]
    fn missing_required_reported_by_name() {
        let a = Args::parse(&words(&[])).unwrap();
        let err = a.req("output").unwrap_err();
        assert!(err.contains("--output"));
    }

    #[test]
    fn dims_parsing() {
        assert_eq!(parse_dims("4,5,6").unwrap(), [4, 5, 6]);
        assert_eq!(parse_dims("128,128").unwrap(), [128, 128, 1]);
        assert!(parse_dims("0,1,1").is_err());
        assert!(parse_dims("1,2,3,4").is_err());
        assert!(parse_dims("a,b").is_err());
    }

    #[test]
    fn region_parsing() {
        assert_eq!(parse_region("0:4,2:6,1:3").unwrap(), ([0, 2, 1], [4, 6, 3]));
        assert_eq!(parse_region("3:17,0:9").unwrap(), ([3, 0, 0], [17, 9, 1]));
        assert!(parse_region("4:4,0:1,0:1").is_err(), "empty range");
        assert!(parse_region("5:3,0:1,0:1").is_err(), "inverted range");
        assert!(parse_region("1,2,3").is_err(), "no colon");
        assert!(parse_region("0:a,0:1,0:1").is_err(), "non-numeric");
        assert!(parse_region("0:1,0:1,0:1,0:1").is_err(), "too many axes");
    }

    #[test]
    fn type_parsing() {
        assert_eq!(parse_type("f32").unwrap(), ScalarType::F32);
        assert_eq!(parse_type("double").unwrap(), ScalarType::F64);
        assert!(parse_type("int").is_err());
    }
}
