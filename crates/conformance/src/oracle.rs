//! Differential oracles: named equivalence checks between independent
//! implementations of the same computation.
//!
//! Each check is a plain function returning [`CheckResult`], so tests,
//! the bench binary, and future fuzz targets can all assert the same
//! property through one implementation. A failure names the check and
//! carries a human-readable detail string; callers decide whether to
//! panic, collect, or shrink.

use crate::corpus::{check_budget, f32_budget, ErrorBudget};
use sperr_compress_api::{Bound, Field, FieldOf, LossyCompressor};
use sperr_core::{compress_chunk_pwe, Sperr, SperrConfig, StageTimes};
use sperr_outlier::Outlier;
use sperr_speck::Termination;
use sperr_wavelet::{levels_for_dims, reference, Kernel, LineExecutor, Serial, TransformScratch};
use std::time::Instant;

/// A named oracle violation.
#[derive(Debug, Clone)]
pub struct CheckFailure {
    /// The oracle that fired (stable name, e.g. `"blocked-lifting"`).
    pub check: &'static str,
    /// What diverged, with enough numbers to start debugging.
    pub detail: String,
}

impl std::fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

/// Outcome of one oracle run.
pub type CheckResult = Result<(), CheckFailure>;

fn fail(check: &'static str, detail: String) -> CheckResult {
    Err(CheckFailure { check, detail })
}

/// Index and values of the first mismatch between two equal-length
/// slices, bit-compared (NaN-safe, sign-of-zero-sensitive — the blocked
/// scheme claims *bit* identity, not approximate equality).
fn first_bit_mismatch(a: &[f64], b: &[f64]) -> Option<(usize, f64, f64)> {
    a.iter()
        .zip(b)
        .position(|(x, y)| x.to_bits() != y.to_bits())
        .map(|i| (i, a[i], b[i]))
}

// ---------------------------------------------------------------------
// Oracle 1: blocked panel lifting vs the per-line reference transform.
// ---------------------------------------------------------------------

/// Forward + inverse blocked lifting must be **bit-identical** to the
/// per-line `wavelet::reference` implementation on the same input, for
/// any [`LineExecutor`] (the executor only reorders whole independent
/// lines, so the arithmetic per line is the same).
pub fn blocked_lifting_matches_reference_with(
    data: &[f64],
    dims: [usize; 3],
    kernel: Kernel,
    exec: &dyn LineExecutor,
) -> CheckResult {
    let levels = levels_for_dims(dims);

    let mut want = data.to_vec();
    reference::forward_3d(&mut want, dims, levels, kernel);

    let mut got = data.to_vec();
    let mut scratch = TransformScratch::default();
    sperr_wavelet::forward_3d_with(&mut got, dims, levels, kernel, exec, &mut scratch);
    if let Some((i, g, w)) = first_bit_mismatch(&got, &want) {
        return fail(
            "blocked-lifting",
            format!("forward dims {dims:?} {kernel:?}: blocked[{i}]={g:e} != reference[{i}]={w:e}"),
        );
    }

    reference::inverse_3d(&mut want, dims, levels, kernel);
    sperr_wavelet::inverse_3d_with(&mut got, dims, levels, kernel, exec, &mut scratch);
    if let Some((i, g, w)) = first_bit_mismatch(&got, &want) {
        return fail(
            "blocked-lifting",
            format!("inverse dims {dims:?} {kernel:?}: blocked[{i}]={g:e} != reference[{i}]={w:e}"),
        );
    }
    Ok(())
}

/// [`blocked_lifting_matches_reference_with`] under the default serial
/// executor.
pub fn blocked_lifting_matches_reference(
    data: &[f64],
    dims: [usize; 3],
    kernel: Kernel,
) -> CheckResult {
    blocked_lifting_matches_reference_with(data, dims, kernel, &Serial)
}

// ---------------------------------------------------------------------
// Oracle 2: the overhauled chunk encoder vs a from-parts reference
// pipeline (the pre-overhaul implementation reassembled from public
// APIs).
// ---------------------------------------------------------------------

/// Output of [`reference_chunk_pwe`]: the two bitstreams plus per-stage
/// wall time (the bench binary charts reference-vs-current throughput
/// from the same run that proves bit identity).
#[derive(Debug, Clone)]
pub struct ReferenceChunk {
    /// SPECK coefficient stream.
    pub speck_stream: Vec<u8>,
    /// Outlier correction stream.
    pub outlier_stream: Vec<u8>,
    /// Wall time per pipeline stage.
    pub times: StageTimes,
}

/// The single-chunk PWE pipeline assembled step-by-step from public
/// APIs, the way `pipeline.rs` worked before the hot-path overhaul:
/// per-line (reference) wavelet transforms, a fresh allocation per
/// intermediate buffer, one thread, serial elementwise sweeps. This is
/// the oracle the production [`compress_chunk_pwe`] must match
/// bit-for-bit.
pub fn reference_chunk_pwe(
    data: &[f64],
    dims: [usize; 3],
    t: f64,
    q_factor: f64,
    kernel: Kernel,
) -> ReferenceChunk {
    let levels = levels_for_dims(dims);
    let q = q_factor * t;

    let t0 = Instant::now();
    let mut coeffs = data.to_vec();
    reference::forward_3d(&mut coeffs, dims, levels, kernel);
    let wavelet = t0.elapsed();

    let t1 = Instant::now();
    let enc = sperr_speck::encode(&coeffs, dims, q, Termination::Quality);
    let speck = t1.elapsed();

    let t2 = Instant::now();
    let mut recon = sperr_speck::reconstruct_quantized(&coeffs, q);
    reference::inverse_3d(&mut recon, dims, levels, kernel);
    let outliers: Vec<Outlier> = data
        .iter()
        .zip(&recon)
        .enumerate()
        .filter_map(|(pos, (&orig, &rec))| {
            let corr = orig - rec;
            (corr.abs() > t).then_some(Outlier { pos, corr })
        })
        .collect();
    let locate_outliers = t2.elapsed();

    let t3 = Instant::now();
    let out_enc = sperr_outlier::encode(&outliers, data.len(), t);
    let outlier_coding = t3.elapsed();

    ReferenceChunk {
        speck_stream: enc.stream,
        outlier_stream: out_enc.stream,
        times: StageTimes {
            wavelet,
            speck,
            locate_outliers,
            outlier_coding,
            ..StageTimes::default()
        },
    }
}

/// The production chunk encoder must emit the same SPECK and outlier
/// bytes as [`reference_chunk_pwe`].
pub fn encoder_matches_reference(
    data: &[f64],
    dims: [usize; 3],
    t: f64,
    q_factor: f64,
    kernel: Kernel,
) -> CheckResult {
    let want = reference_chunk_pwe(data, dims, t, q_factor, kernel);
    let got = compress_chunk_pwe(data, dims, t, q_factor, kernel);
    if got.speck_stream != want.speck_stream {
        return fail(
            "encoder-vs-reference",
            format!(
                "SPECK stream diverged on dims {dims:?} t={t:e}: {} vs {} bytes",
                got.speck_stream.len(),
                want.speck_stream.len()
            ),
        );
    }
    if got.outlier_stream != want.outlier_stream {
        return fail(
            "encoder-vs-reference",
            format!(
                "outlier stream diverged on dims {dims:?} t={t:e}: {} vs {} bytes",
                got.outlier_stream.len(),
                want.outlier_stream.len()
            ),
        );
    }
    Ok(())
}

/// Two independently produced streams that claim to be the same encoding
/// must be the same bytes. `label` names the pair in the failure (e.g.
/// `"pre-PR vs pooled"`); callers that already hold both streams (the
/// bench binary times its own compressions) assert through this instead
/// of an ad-hoc `assert_eq!`.
pub fn streams_bit_identical(label: &str, a: &[u8], b: &[u8]) -> CheckResult {
    if a == b {
        return Ok(());
    }
    let first = a.iter().zip(b.iter()).position(|(x, y)| x != y).unwrap_or(a.len().min(b.len()));
    fail(
        "stream-identity",
        format!(
            "{label}: streams diverge ({} vs {} bytes, first difference at byte {first})",
            a.len(),
            b.len()
        ),
    )
}

// ---------------------------------------------------------------------
// Oracle 3: thread-count bit identity of the full container.
// ---------------------------------------------------------------------

/// Compressing the same field with the same configuration must produce
/// the **same bytes** at every worker-pool width — parallelism is a
/// scheduling decision, never an encoding decision. Returns the
/// (identical) stream so callers can feed it to further checks without
/// recompressing.
pub fn thread_count_bit_identity(
    field: &Field,
    bound: Bound,
    chunk_dims: [usize; 3],
    thread_counts: &[usize],
) -> Result<Vec<u8>, CheckFailure> {
    let build = |threads: usize| {
        Sperr::new(SperrConfig { chunk_dims, num_threads: threads, ..SperrConfig::default() })
    };
    let (&first, rest) = thread_counts
        .split_first()
        .expect("thread_count_bit_identity needs at least one thread count");
    let baseline = build(first).compress(field, bound).map_err(|e| CheckFailure {
        check: "thread-identity",
        detail: format!("{first}-thread compress failed: {e}"),
    })?;
    for &threads in rest {
        let stream = build(threads).compress(field, bound).map_err(|e| CheckFailure {
            check: "thread-identity",
            detail: format!("{threads}-thread compress failed: {e}"),
        })?;
        if stream != baseline {
            return Err(CheckFailure {
                check: "thread-identity",
                detail: format!(
                    "stream differs between {first} and {threads} threads \
                     (dims {:?}, chunk {chunk_dims:?}, {} vs {} bytes)",
                    field.dims,
                    baseline.len(),
                    stream.len()
                ),
            });
        }
    }
    Ok(baseline)
}

// ---------------------------------------------------------------------
// Oracle 4: the resilient decoder vs the strict decoder on clean input.
// ---------------------------------------------------------------------

/// On an *undamaged* stream, [`Sperr::decompress_resilient`] must agree
/// bit-for-bit with the strict [`Sperr::decompress`] and report every
/// chunk healthy — degradation paths must cost nothing when nothing is
/// degraded.
pub fn resilient_matches_strict(sperr: &Sperr, stream: &[u8]) -> CheckResult {
    let strict = sperr.decompress(stream).map_err(|e| CheckFailure {
        check: "resilient-vs-strict",
        detail: format!("strict decode failed on clean stream: {e}"),
    })?;
    let (resilient, report) = sperr.decompress_resilient(stream).map_err(|e| CheckFailure {
        check: "resilient-vs-strict",
        detail: format!("resilient decode failed on clean stream: {e}"),
    })?;
    if !report.all_ok() {
        return fail(
            "resilient-vs-strict",
            format!("clean stream reported damaged chunks: {:?}", report.failed_chunks()),
        );
    }
    if resilient.dims != strict.dims {
        return fail(
            "resilient-vs-strict",
            format!("dims diverged: {:?} vs {:?}", resilient.dims, strict.dims),
        );
    }
    if let Some((i, r, s)) = first_bit_mismatch(&resilient.data, &strict.data) {
        return fail(
            "resilient-vs-strict",
            format!("value diverged at {i}: resilient {r:e} vs strict {s:e}"),
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Oracle 5: encode → decode → re-encode stability.
// ---------------------------------------------------------------------

/// Re-encoding a reconstruction under the same bound must keep honoring
/// the codec's documented budget *relative to that reconstruction* —
/// i.e. a decompress→compress cycle drifts by at most one budget, never
/// compounds unboundedly. `budget` is the guarantee for `bound` (see
/// [`crate::corpus::documented_budget`]).
pub fn reencode_idempotent(
    codec: &dyn LossyCompressor,
    field: &Field,
    bound: Bound,
    budget: ErrorBudget,
) -> CheckResult {
    let err = |what: &str, e: sperr_compress_api::CompressError| CheckFailure {
        check: "reencode-idempotent",
        detail: format!("{what} failed on dims {:?}: {e}", field.dims),
    };
    let first = codec.compress(field, bound).map_err(|e| err("first compress", e))?;
    let recon = codec.decompress(&first).map_err(|e| err("first decompress", e))?;
    let second = codec.compress(&recon, bound).map_err(|e| err("re-compress", e))?;
    let recon2 = codec.decompress(&second).map_err(|e| err("second decompress", e))?;
    if let Err((observed, allowed)) = check_budget(&recon.data, &recon2.data, budget) {
        return fail(
            "reencode-idempotent",
            format!(
                "{} re-encode drifted past its budget on dims {:?}: observed {observed:e}, \
                 allowed {allowed:e}",
                codec.name(),
                field.dims
            ),
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Oracle 6 & 7: stage-level round trips (SPECK, outlier coder).
// ---------------------------------------------------------------------

/// A quality-terminated SPECK stream must decode to exactly the midpoint
/// reconstruction of the encoder's own quantization — the decoder's
/// documented contract.
pub fn speck_roundtrip_stable(coeffs: &[f64], dims: [usize; 3], q: f64) -> CheckResult {
    let enc = sperr_speck::encode(coeffs, dims, q, Termination::Quality);
    let want = sperr_speck::reconstruct_quantized(coeffs, q);
    let got = sperr_speck::decode(&enc.stream, dims, q, enc.num_planes).map_err(|e| {
        CheckFailure {
            check: "speck-roundtrip",
            detail: format!("decode failed on own stream (dims {dims:?}, q {q:e}): {e}"),
        }
    })?;
    if let Some((i, g, w)) = first_bit_mismatch(&got, &want) {
        return fail(
            "speck-roundtrip",
            format!("dims {dims:?} q {q:e}: decoded[{i}]={g:e} != quantized[{i}]={w:e}"),
        );
    }
    Ok(())
}

/// The word-granular SPECK hot path (cached set significance, coalesced
/// zero runs, packed refinement words) must emit the **same bytes and
/// the same bit counters** as the retained bit-at-a-time encoder in
/// `sperr_speck::reference`, in both termination modes. This is the
/// stage-level oracle behind the PR 4 fast-path overhaul; the golden
/// corpus then pins the same property end-to-end.
pub fn speck_matches_reference(coeffs: &[f64], dims: [usize; 3], q: f64) -> CheckResult {
    let mismatch = |mode: &str, what: &str, got: usize, want: usize| {
        fail(
            "speck-vs-reference",
            format!("dims {dims:?} q {q:e} ({mode}): {what} diverged, {got} vs {want}"),
        )
    };
    let fast = sperr_speck::encode(coeffs, dims, q, Termination::Quality);
    let slow = sperr_speck::reference::encode(coeffs, dims, q, Termination::Quality);
    if fast.stream != slow.stream {
        return mismatch("quality", "stream bytes", fast.stream.len(), slow.stream.len());
    }
    if fast.bits_used != slow.bits_used {
        return mismatch("quality", "bits_used", fast.bits_used, slow.bits_used);
    }
    if fast.significance_bits != slow.significance_bits {
        return mismatch(
            "quality",
            "significance_bits",
            fast.significance_bits,
            slow.significance_bits,
        );
    }
    if fast.refinement_bits != slow.refinement_bits {
        return mismatch("quality", "refinement_bits", fast.refinement_bits, slow.refinement_bits);
    }
    // A budget cut mid-stream exercises the run-truncation and partial-word
    // paths; two-thirds of the full length lands inside the coded body.
    let budget = fast.bits_used * 2 / 3;
    let fast_b = sperr_speck::encode(coeffs, dims, q, Termination::BitBudget(budget));
    let slow_b = sperr_speck::reference::encode(coeffs, dims, q, Termination::BitBudget(budget));
    if fast_b.stream != slow_b.stream {
        return mismatch("budget", "stream bytes", fast_b.stream.len(), slow_b.stream.len());
    }
    if fast_b.bits_used != slow_b.bits_used {
        return mismatch("budget", "bits_used", fast_b.bits_used, slow_b.bits_used);
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Oracle 8: random-access region decode vs the full decode.
// ---------------------------------------------------------------------

/// Deterministic bbox sampler for the region oracle: always includes the
/// degenerate extremes (full volume, single voxel, a chunk-straddling
/// box, a prime-offset box), then fills up to `n` with seeded random
/// boxes. Every box is half-open `[lo, hi)` and in-bounds by
/// construction.
pub fn region_bboxes(
    dims: [usize; 3],
    chunk_dims: [usize; 3],
    n: usize,
    seed: u64,
) -> Vec<([usize; 3], [usize; 3])> {
    use rand::{rngs::StdRng, Rng as _, SeedableRng};
    let mut out = Vec::with_capacity(n);
    // Full volume: region decode must degrade gracefully to a plain
    // decompress.
    out.push(([0; 3], dims));
    // Single voxel, dead centre.
    let c = [dims[0] / 2, dims[1] / 2, dims[2] / 2];
    out.push((c, [c[0] + 1, c[1] + 1, c[2] + 1]));
    // Chunk-straddling: one voxel either side of the first chunk
    // boundary on every axis that has one.
    let straddle_lo = [
        chunk_dims[0].min(dims[0]).saturating_sub(1),
        chunk_dims[1].min(dims[1]).saturating_sub(1),
        chunk_dims[2].min(dims[2]).saturating_sub(1),
    ];
    let straddle_hi = [
        (straddle_lo[0] + 2).min(dims[0]),
        (straddle_lo[1] + 2).min(dims[1]),
        (straddle_lo[2] + 2).min(dims[2]),
    ];
    out.push((straddle_lo, straddle_hi));
    // Prime offsets and extents — misaligned with every power-of-two
    // chunk grid.
    let plo = [3 % dims[0].max(1), 5 % dims[1].max(1), 7 % dims[2].max(1)];
    let phi = [
        (plo[0] + 11).min(dims[0]).max(plo[0] + 1),
        (plo[1] + 13).min(dims[1]).max(plo[1] + 1),
        (plo[2] + 17).min(dims[2]).max(plo[2] + 1),
    ];
    out.push((plo, phi));
    let mut rng = StdRng::seed_from_u64(seed);
    while out.len() < n {
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        for a in 0..3 {
            let x0 = rng.next_u64() as usize % dims[a];
            let x1 = x0 + 1 + rng.next_u64() as usize % (dims[a] - x0);
            lo[a] = x0;
            hi[a] = x1;
        }
        out.push((lo, hi));
    }
    out.truncate(n);
    out
}

/// `Sperr::decode_region` must be **bit-identical** to slicing the same
/// bbox out of a full [`Sperr::decompress`], at every thread count, with
/// a healthy per-chunk report. `expect_index` asserts how the region was
/// located: via the v3 chunk index (`true`) or the legacy chunk-table
/// scan (`false`) — catching a v3 stream that silently fell back.
pub fn region_vs_full(
    stream: &[u8],
    chunk_dims: [usize; 3],
    bboxes: &[([usize; 3], [usize; 3])],
    thread_counts: &[usize],
    expect_index: bool,
) -> CheckResult {
    let build = |threads: usize| {
        Sperr::new(SperrConfig { chunk_dims, num_threads: threads, ..SperrConfig::default() })
    };
    let full = build(1).decompress(stream).map_err(|e| CheckFailure {
        check: "region-vs-full",
        detail: format!("full decompress failed: {e}"),
    })?;
    let [nx, ny, _] = full.dims;
    for &(lo, hi) in bboxes {
        let mut want = Vec::with_capacity((hi[0] - lo[0]) * (hi[1] - lo[1]) * (hi[2] - lo[2]));
        for z in lo[2]..hi[2] {
            for y in lo[1]..hi[1] {
                let row = (z * ny + y) * nx + lo[0];
                want.extend_from_slice(&full.data[row..row + (hi[0] - lo[0])]);
            }
        }
        for &threads in thread_counts {
            let (region, report) =
                build(threads).decode_region(stream, lo, hi).map_err(|e| CheckFailure {
                    check: "region-vs-full",
                    detail: format!("decode_region {lo:?}..{hi:?} @{threads}t failed: {e}"),
                })?;
            if !report.all_ok() {
                return fail(
                    "region-vs-full",
                    format!(
                        "clean stream, bbox {lo:?}..{hi:?} @{threads}t: damaged chunks \
                         reported: {:?}",
                        report.statuses
                    ),
                );
            }
            if report.used_index != expect_index {
                return fail(
                    "region-vs-full",
                    format!(
                        "bbox {lo:?}..{hi:?} @{threads}t: used_index {} but expected {}",
                        report.used_index, expect_index
                    ),
                );
            }
            let expect_dims = [hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]];
            if region.dims != expect_dims {
                return fail(
                    "region-vs-full",
                    format!(
                        "bbox {lo:?}..{hi:?} @{threads}t: sub-volume dims {:?} != {expect_dims:?}",
                        region.dims
                    ),
                );
            }
            if let Some((i, r, f)) = first_bit_mismatch(&region.data, &want) {
                return fail(
                    "region-vs-full",
                    format!(
                        "bbox {lo:?}..{hi:?} @{threads}t: region[{i}]={r:e} != full-slice[{i}]={f:e}"
                    ),
                );
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Oracle 9: the f32-native path vs the widened-f64 path.
// ---------------------------------------------------------------------

/// The f32-native pipeline against the f64 pipeline fed the widened
/// copy of the same samples. Four properties, all on one compression:
///
/// 1. the native stream is marked f32 (precision tag 2) and its own
///    reconstruction honors the PWE bound at the f32-adjusted budget
///    ([`f32_budget`]);
/// 2. the f64 decode surface on the native stream is *exactly* the
///    widened f32 reconstruction — one decode, two views, no second
///    rounding;
/// 3. the native reconstruction stays within the combined budget of the
///    widened-f64 path's reconstruction (both are within their own
///    budget of the same input, so a larger gap means one path drifted);
/// 4. the native stream is bit-identical at every worker-pool width, the
///    same thread-identity contract the f64 path pins.
pub fn f32_vs_widened(
    field32: &FieldOf<f32>,
    t: f64,
    chunk_dims: [usize; 3],
    thread_counts: &[usize],
) -> CheckResult {
    let dims = field32.dims;
    let err = |what: &str, e: sperr_compress_api::CompressError| CheckFailure {
        check: "f32-vs-widened",
        detail: format!("{what} failed on dims {dims:?} t {t:e}: {e}"),
    };
    let build = |threads: usize| {
        Sperr::new(SperrConfig { chunk_dims, num_threads: threads, ..SperrConfig::default() })
    };
    let sperr = build(thread_counts.first().copied().unwrap_or(1));
    let stream32 = sperr.compress_f32(field32, Bound::Pwe(t)).map_err(|e| err("compress_f32", e))?;

    // Property 1: native marking + PWE at the f32 budget.
    let info = sperr.inspect(&stream32).map_err(|e| err("inspect", e))?;
    if !info.native_f32 {
        return fail(
            "f32-vs-widened",
            format!("compress_f32 stream not marked f32-native (dims {dims:?})"),
        );
    }
    let recon32 = sperr.decompress_f32(&stream32).map_err(|e| err("decompress_f32", e))?;
    let allowed = f32_budget(t, field32.range());
    let observed = field32
        .data
        .iter()
        .zip(&recon32.data)
        .map(|(&a, &b)| (a as f64 - b as f64).abs())
        .fold(0.0, f64::max);
    if observed > allowed {
        return fail(
            "f32-vs-widened",
            format!("native PWE violated on dims {dims:?}: observed {observed:e} > allowed {allowed:e} (t {t:e})"),
        );
    }

    // Property 2: the f64 surface is the exact widening of the f32 decode.
    let recon64 = sperr.decompress(&stream32).map_err(|e| err("decompress (f64 surface)", e))?;
    let widened: Vec<f64> = recon32.data.iter().map(|&v| v as f64).collect();
    if let Some((i, a, b)) = first_bit_mismatch(&recon64.data, &widened) {
        return fail(
            "f32-vs-widened",
            format!(
                "f64 decode of a native stream is not the exact widening: [{i}] {a:e} vs {b:e}"
            ),
        );
    }

    // Property 3: the two paths' reconstructions stay within the combined
    // budget (the widened path guarantees t against the same samples).
    let widened_field = field32.widen();
    let stream64 =
        sperr.compress(&widened_field, Bound::Pwe(t)).map_err(|e| err("widened compress", e))?;
    let recon_w = sperr.decompress(&stream64).map_err(|e| err("widened decompress", e))?;
    let cross = recon_w
        .data
        .iter()
        .zip(&widened)
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0, f64::max);
    let cross_allowed = t + allowed;
    if cross > cross_allowed {
        return fail(
            "f32-vs-widened",
            format!(
                "native and widened reconstructions diverge on dims {dims:?}: \
                 {cross:e} > combined budget {cross_allowed:e}"
            ),
        );
    }

    // Property 4: thread-count bit identity at f32.
    for &threads in thread_counts.iter().skip(1) {
        let other =
            build(threads).compress_f32(field32, Bound::Pwe(t)).map_err(|e| err("compress_f32", e))?;
        if other != stream32 {
            return fail(
                "f32-vs-widened",
                format!(
                    "f32 stream differs between {} and {threads} threads (dims {dims:?}, \
                     {} vs {} bytes)",
                    thread_counts[0],
                    stream32.len(),
                    other.len()
                ),
            );
        }
    }
    Ok(())
}

/// The outlier coder must return corrections at exactly the encoded
/// positions, each within `t` of the original correction (its refinement
/// contract: residual error after correction is at most the tolerance).
pub fn outlier_roundtrip_exact(outliers: &[Outlier], array_len: usize, t: f64) -> CheckResult {
    let enc = sperr_outlier::encode(outliers, array_len, t);
    let mut got =
        sperr_outlier::decode(&enc.stream, array_len, t, enc.max_n).map_err(|e| CheckFailure {
            check: "outlier-roundtrip",
            detail: format!("decode failed on own stream (n {array_len}, t {t:e}): {e}"),
        })?;
    // The decoder emits corrections in refinement order, not position
    // order; normalize before pairing up.
    got.sort_by_key(|o| o.pos);
    let mut want: Vec<Outlier> = outliers.to_vec();
    want.sort_by_key(|o| o.pos);
    if got.len() != want.len() {
        return fail(
            "outlier-roundtrip",
            format!("{} outliers in, {} out (n {array_len}, t {t:e})", want.len(), got.len()),
        );
    }
    for (g, w) in got.iter().zip(&want) {
        if g.pos != w.pos {
            return fail(
                "outlier-roundtrip",
                format!("position drifted: encoded {} decoded {}", w.pos, g.pos),
            );
        }
        let residual = (g.corr - w.corr).abs();
        if residual > t {
            return fail(
                "outlier-roundtrip",
                format!("correction at {} off by {residual:e} > t {t:e}", g.pos),
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sperr_datagen::SyntheticField;
    use sperr_wavelet::stress::{ReverseOrder, StripedWorkers};

    fn small_field() -> Field {
        SyntheticField::MirandaPressure.generate([13, 10, 11], 3)
    }

    #[test]
    fn lifting_oracle_accepts_all_executors() {
        let f = small_field();
        for exec in [&Serial as &dyn LineExecutor, &ReverseOrder, &StripedWorkers(3)] {
            blocked_lifting_matches_reference_with(&f.data, f.dims, Kernel::Cdf97, exec)
                .unwrap();
        }
    }

    #[test]
    fn encoder_oracle_accepts_production_encoder() {
        let f = small_field();
        let t = f.range() * 1e-3;
        encoder_matches_reference(&f.data, f.dims, t, 1.5, Kernel::Cdf97).unwrap();
    }

    #[test]
    fn encoder_oracle_rejects_perturbed_input() {
        // Sanity: the oracle actually discriminates — reference on one
        // input vs production on a different input must fail.
        let f = small_field();
        let t = f.range() * 1e-3;
        let want = reference_chunk_pwe(&f.data, f.dims, t, 1.5, Kernel::Cdf97);
        let mut perturbed = f.data.clone();
        perturbed[0] += 10.0 * f.range();
        let got = compress_chunk_pwe(&perturbed, f.dims, t, 1.5, Kernel::Cdf97);
        assert_ne!(got.speck_stream, want.speck_stream);
    }

    #[test]
    fn speck_fast_path_oracle_accepts_production_encoder() {
        let f = small_field();
        let t = f.range() * 1e-3;
        speck_matches_reference(&f.data, f.dims, 1.5 * t).unwrap();
    }

    #[test]
    fn region_oracle_smoke() {
        // Tier-1 smoke: a multi-chunk field, a handful of bboxes, both
        // the indexed and the legacy-scan paths. The full sweep (50
        // bboxes × corpus × 1/2/4/8 threads) runs tier-2 via
        // `sperr-conformance regions`.
        let f = SyntheticField::MirandaPressure.generate([21, 18, 17], 7);
        let chunk_dims = [16, 16, 16];
        let sperr = Sperr::new(SperrConfig {
            chunk_dims,
            num_threads: 1,
            ..SperrConfig::default()
        });
        let t = f.range() * 1e-3;
        let stream = sperr.compress(&f, Bound::Pwe(t)).unwrap();
        let bboxes = region_bboxes(f.dims, chunk_dims, 8, 11);
        region_vs_full(&stream, chunk_dims, &bboxes, &[1, 2], true).unwrap();
        let v2 = sperr.downgrade_to_v2(&stream).unwrap();
        region_vs_full(&v2, chunk_dims, &bboxes, &[1, 2], false).unwrap();
    }

    #[test]
    fn f32_oracle_accepts_native_path() {
        // Tier-1 smoke: a multi-chunk 3D field through the f32-native
        // pipeline at two thread counts. The full corpus sweep at
        // 1/2/4/8 threads runs tier-2 via `sperr-conformance oracles`.
        let f = SyntheticField::MirandaPressure.generate([21, 10, 11], 3).narrow_lossy();
        let t = f.tolerance_for_idx(15);
        f32_vs_widened(&f, t, [16, 16, 16], &[1, 2]).unwrap();
    }

    #[test]
    fn stage_roundtrip_oracles_hold() {
        let f = small_field();
        let t = f.range() * 1e-3;
        speck_roundtrip_stable(&f.data, f.dims, 1.5 * t).unwrap();
        let outliers = vec![
            Outlier { pos: 0, corr: 5.0 * t },
            Outlier { pos: 7, corr: -3.2 * t },
            Outlier { pos: f.data.len() - 1, corr: 40.0 * t },
        ];
        outlier_roundtrip_exact(&outliers, f.data.len(), t).unwrap();
    }
}
