//! Conformance subsystem for the SPERR reproduction.
//!
//! SPERR's headline claim is a *guaranteed* maximum point-wise error, and
//! the paper's evaluation (§VI) rests on driving five codecs through
//! identical error bounds. After the hot-path overhaul every future perf
//! or scaling PR carries a real risk of silent encoder regression — a
//! stream that still decodes but no longer matches what yesterday's
//! encoder produced, or an error bound that quietly stopped holding. This
//! crate is the frozen oracle those PRs land against. Three layers:
//!
//! 1. **Golden streams** ([`golden`]): committed, versioned compressed
//!    artifacts for a matrix of synthetic fields × dimension shapes
//!    (1D/2D/3D, odd/prime/pow2) × termination modes, for all five codecs.
//!    A tier-2 test re-encodes each corpus input and compares against the
//!    committed bytes (byte-for-byte), then decodes the committed bytes
//!    and checks the decoded values' digest and error bound
//!    (value-for-value). Regenerate with
//!    `cargo run -p sperr-conformance -- regen` — and bump
//!    [`golden::GOLDEN_VERSION`] when doing so; CI rejects golden changes
//!    without a version bump.
//! 2. **Differential oracles** ([`oracle`]): named, reusable equivalence
//!    checks — blocked-vs-reference wavelet lifting, pooled-vs-single-
//!    thread bit identity, resilient-vs-strict decoding on clean input,
//!    encode→decode→re-encode idempotence, and the composed-from-parts
//!    reference PWE pipeline the bench binary measures against. Tests,
//!    `crates/bench`, and future fuzz targets all call the same
//!    implementations, so "what counts as equivalent" is defined once.
//! 3. **Fault-injection campaign** ([`fault`]): adversarial I/O
//!    endpoints (short reads, scripted `ErrorKind` injection, zero-
//!    progress writers) and scripted worker-panic injection at every
//!    pipeline stage, driven against the streaming API's contract — clean
//!    typed errors, no escaping panics, no hangs (watchdog-enforced), no
//!    partial container that verifies, bounded in-flight memory, and
//!    byte-identity with the in-memory path on every successful run.
//!    `sperr-conformance faults [N]`.
//! 4. **PWE-guarantee campaign** ([`pwe`]): randomized fields with
//!    injected outliers, swept across tolerance decades, asserting
//!    `max|x − x̂| ≤ ε` for SPERR and each baseline's *documented* bound
//!    (ZFP/SZ: ≤ t; MGARD: ≤ its hard `(L+1)·t/2` bound; TTHRESH:
//!    achieved PSNR ≥ target). Failures shrink to a minimal reproducer
//!    dumped under `target/conformance-failures/`.
//! 5. **Region oracle** ([`oracle::region_vs_full`]): `decode_region`
//!    over randomized bboxes (full-volume, single-voxel,
//!    chunk-straddling, prime-offset) must be bit-identical to slicing
//!    the full decode, at every thread count, on both indexed (v3) and
//!    legacy containers. `sperr-conformance regions [N]`.
//! 6. **Progressive-refinement campaign** ([`refine`]): size-bounded
//!    streams decoded at budgets `b1 < b2 < full`; the achieved max
//!    error must be monotone non-increasing, the unbounded budget must
//!    be bit-identical to the strict decode, and truncation must never
//!    error. Failures shrink and dump like the PWE campaign.
//!    `sperr-conformance refine [N]`.
//!
//! The motivating literature: SDRBench (Zhao et al., 2021) on how lossy-
//! compressor results drift without a pinned conformance corpus, and
//! Li et al. (2020) on why error-bounded codecs need end-to-end
//! verification of the bound itself, not just unit tests.

pub mod corpus;
pub mod fault;
pub mod golden;
pub mod oracle;
pub mod pwe;
pub mod refine;

pub use corpus::{documented_budget, CodecId, CorpusInput, ErrorBudget};
pub use fault::{run_fault_campaign, FaultyReader, FaultyWriter};
pub use golden::GOLDEN_VERSION;
pub use oracle::{CheckFailure, CheckResult};
pub use refine::{run_refine_campaign, RefineConfig};
