//! Multi-field archive container — the paper's §I motivation made
//! concrete: community data sets (CESM LENS, JHU turbulence) bundle many
//! variables, are written once and read selectively for years. This
//! module packs several independently compressed fields with names into
//! one stream, supporting selective extraction without decoding (or even
//! scanning past) unrelated fields.
//!
//! Format:
//! ```text
//! magic "SPAR" | u32 n | directory: n x (u16 name_len, name, u64 stream_len)
//!              | streams back-to-back
//! ```

use crate::compressor::Sperr;
use sperr_bitstream::{ByteReader, ByteWriter};
use sperr_compress_api::{Bound, CompressError, Field, LossyCompressor};

const MAGIC: &[u8; 4] = b"SPAR";

/// Directory entry of an archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchiveEntry {
    /// Variable name.
    pub name: String,
    /// Size of the compressed stream in bytes.
    pub stream_len: usize,
}

/// Compresses each `(name, field, bound)` with `sperr` and packs the
/// results into one archive stream. Names must be unique and at most
/// 65535 bytes.
pub fn write_archive(
    sperr: &Sperr,
    entries: &[(&str, &Field, Bound)],
) -> Result<Vec<u8>, CompressError> {
    let mut streams = Vec::with_capacity(entries.len());
    for (i, (name, field, bound)) in entries.iter().enumerate() {
        if name.len() > u16::MAX as usize {
            return Err(CompressError::Invalid(format!("name too long: {name}")));
        }
        if entries[..i].iter().any(|(n, _, _)| n == name) {
            return Err(CompressError::Invalid(format!("duplicate name: {name}")));
        }
        streams.push(sperr.compress(field, *bound)?);
    }
    let mut w = ByteWriter::new();
    w.put_bytes(MAGIC);
    w.put_u32(entries.len() as u32);
    for ((name, _, _), stream) in entries.iter().zip(&streams) {
        w.put_u16(name.len() as u16);
        w.put_bytes(name.as_bytes());
        w.put_u64(stream.len() as u64);
    }
    for stream in &streams {
        w.put_bytes(stream);
    }
    Ok(w.into_bytes())
}

/// Parses the directory: entry names and compressed sizes, plus the byte
/// offset where the streams begin.
fn directory(bytes: &[u8]) -> Result<(Vec<ArchiveEntry>, usize), CompressError> {
    let mut r = ByteReader::new(bytes);
    if r.get_bytes(4)? != MAGIC {
        return Err(CompressError::Corrupt("bad SPAR magic".into()));
    }
    let n = r.get_u32()? as usize;
    if n > 1 << 20 {
        return Err(CompressError::Corrupt("implausible archive entry count".into()));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let name_len = r.get_u16()? as usize;
        let name = std::str::from_utf8(r.get_bytes(name_len)?)
            .map_err(|_| CompressError::Corrupt("non-UTF8 archive name".into()))?
            .to_string();
        let stream_len = r.get_u64()? as usize;
        entries.push(ArchiveEntry { name, stream_len });
    }
    let payload_start = r.position();
    let total: usize = entries.iter().map(|e| e.stream_len).sum();
    if bytes.len() < payload_start + total {
        return Err(CompressError::Corrupt("truncated archive payload".into()));
    }
    Ok((entries, payload_start))
}

/// Lists the archive's directory without decoding anything.
pub fn list_archive(bytes: &[u8]) -> Result<Vec<ArchiveEntry>, CompressError> {
    directory(bytes).map(|(entries, _)| entries)
}

/// Extracts and decompresses a single named field — the selective-access
/// pattern of community archives. Only the directory and the requested
/// stream are touched.
pub fn read_archive_entry(
    sperr: &Sperr,
    bytes: &[u8],
    name: &str,
) -> Result<Field, CompressError> {
    let (entries, payload_start) = directory(bytes)?;
    let mut offset = payload_start;
    for e in &entries {
        if e.name == name {
            return sperr.decompress(&bytes[offset..offset + e.stream_len]);
        }
        offset += e.stream_len;
    }
    Err(CompressError::Invalid(format!("no archive entry named {name}")))
}

/// Decompresses every field in the archive, in directory order.
pub fn read_archive(
    sperr: &Sperr,
    bytes: &[u8],
) -> Result<Vec<(String, Field)>, CompressError> {
    let (entries, payload_start) = directory(bytes)?;
    let mut out = Vec::with_capacity(entries.len());
    let mut offset = payload_start;
    for e in entries {
        let field = sperr.decompress(&bytes[offset..offset + e.stream_len])?;
        offset += e.stream_len;
        out.push((e.name, field));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::SperrConfig;

    fn sample_field(seed: usize) -> Field {
        Field::from_fn([16, 12, 8], |x, y, z| {
            ((x + seed) as f64 * 0.3).sin() * 10.0 + (y as f64 * 0.2).cos() + z as f64
        })
    }

    #[test]
    fn archive_roundtrip_all_fields() {
        let sperr = Sperr::new(SperrConfig::default());
        let a = sample_field(0);
        let b = sample_field(5);
        let t_a = a.tolerance_for_idx(15);
        let bytes = write_archive(
            &sperr,
            &[("pressure", &a, Bound::Pwe(t_a)), ("velocity", &b, Bound::Bpp(4.0))],
        )
        .unwrap();
        let all = read_archive(&sperr, &bytes).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "pressure");
        assert_eq!(all[1].0, "velocity");
        let err = sperr_metrics::max_pwe(&a.data, &all[0].1.data);
        assert!(err <= t_a);
    }

    #[test]
    fn selective_extraction() {
        let sperr = Sperr::new(SperrConfig::default());
        let a = sample_field(1);
        let b = sample_field(2);
        let t = a.tolerance_for_idx(12);
        let bytes = write_archive(
            &sperr,
            &[("temp", &a, Bound::Pwe(t)), ("ch4", &b, Bound::Pwe(t))],
        )
        .unwrap();
        let ch4 = read_archive_entry(&sperr, &bytes, "ch4").unwrap();
        assert!(sperr_metrics::max_pwe(&b.data, &ch4.data) <= t);
        assert!(read_archive_entry(&sperr, &bytes, "nope").is_err());
    }

    #[test]
    fn directory_listing() {
        let sperr = Sperr::new(SperrConfig::default());
        let a = sample_field(3);
        let bytes =
            write_archive(&sperr, &[("only", &a, Bound::Pwe(0.01))]).unwrap();
        let dir = list_archive(&bytes).unwrap();
        assert_eq!(dir.len(), 1);
        assert_eq!(dir[0].name, "only");
        assert!(dir[0].stream_len > 0);
    }

    #[test]
    fn duplicate_names_rejected() {
        let sperr = Sperr::new(SperrConfig::default());
        let a = sample_field(4);
        assert!(write_archive(
            &sperr,
            &[("x", &a, Bound::Pwe(0.1)), ("x", &a, Bound::Pwe(0.1))]
        )
        .is_err());
    }

    #[test]
    fn corrupt_archives_rejected() {
        let sperr = Sperr::new(SperrConfig::default());
        let a = sample_field(6);
        let good = write_archive(&sperr, &[("f", &a, Bound::Pwe(0.1))]).unwrap();
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(list_archive(&bad).is_err());
        assert!(list_archive(&good[..good.len() - 3]).is_err());
        assert!(list_archive(&[]).is_err());
    }

    #[test]
    fn empty_archive_is_valid() {
        let sperr = Sperr::new(SperrConfig::default());
        let bytes = write_archive(&sperr, &[]).unwrap();
        assert!(list_archive(&bytes).unwrap().is_empty());
        assert!(read_archive(&sperr, &bytes).unwrap().is_empty());
    }
}
