//! The SPECK encoder proper: quantization, sorting passes, refinement
//! passes, and mid-riser reconstruction — the hot-path (word-granular)
//! implementation. The pre-overhaul bit-at-a-time path lives on in
//! [`crate::reference`] as a differential oracle; both must produce
//! byte-identical streams (see DESIGN.md §10 for the invariants that make
//! this restructuring stream-neutral).

use crate::pyramid::MaxPyramid;
use crate::set::SetS;
use sperr_bitstream::BitWriter;

/// When the encoder stops producing bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// Encode every bitplane down to the finest threshold `q` — used for
    /// SPERR's PWE-bounded mode (the outlier coder then fixes what is left).
    Quality,
    /// Stop once this many bits have been produced — SPERR's fixed-size
    /// mode. The resulting prefix is still decodable (embedded stream).
    BitBudget(usize),
}

/// Result of [`encode`].
#[derive(Debug, Clone)]
pub struct EncodedSpeck {
    /// Bit-packed SPECK stream (zero-padded to a whole byte).
    pub stream: Vec<u8>,
    /// Number of bitplanes spanned by the stream; the first plane coded is
    /// `num_planes - 1`. Required for decoding. Zero means "all
    /// coefficients were inside the dead zone".
    pub num_planes: u8,
    /// Exact number of bits produced (before byte padding).
    pub bits_used: usize,
    /// Bits spent on set-significance tests (§IV-B bit type 1).
    pub significance_bits: usize,
    /// Bits spent on coefficient signs (bit type 2).
    pub sign_bits: usize,
    /// Bits spent on refinement (bit type 3).
    pub refinement_bits: usize,
    /// Significant sets split into children during encoding. Zero on the
    /// reference path, which does not track structural statistics.
    pub sets_split: usize,
    /// Guaranteed-zero significance runs emitted as bulk writes (the
    /// word-granular fast path; zero on the reference path).
    pub zero_runs: usize,
}

/// Quantizes `|c| / q` with floor, saturating at 2^62 so downstream shifts
/// cannot overflow. NaNs quantize to 0 (dead zone).
#[inline]
fn quantize_one(c: f64, inv_q: f64) -> u64 {
    const CAP: f64 = (1u64 << 62) as f64;
    let r = c.abs() * inv_q;
    if r >= CAP {
        1u64 << 62
    } else {
        r as u64 // saturating f64 -> u64 cast; truncation == floor for r >= 0
    }
}

/// Quantizes every coefficient: magnitudes and sign flags. Shared by the
/// production encoder and [`crate::reference`] so the two paths cannot
/// drift in their dead-zone handling.
pub(crate) fn quantize_all(coeffs: &[f64], q: f64) -> (Vec<u64>, Vec<bool>) {
    let inv_q = 1.0 / q;
    let mut k = Vec::with_capacity(coeffs.len());
    let mut negative = Vec::with_capacity(coeffs.len());
    for &c in coeffs {
        k.push(quantize_one(c, inv_q));
        negative.push(c < 0.0);
    }
    (k, negative)
}

/// `64 - magnitude.leading_zeros()`: the number of significant bitplanes.
/// A set with cached `msb_plus1 = planes_of(max)` is significant at plane
/// `n` exactly when `msb_plus1 > n`, which is the same predicate as the
/// reference path's `(max >> n) != 0`.
#[inline]
fn planes_of(magnitude: u64) -> u8 {
    (64 - magnitude.leading_zeros()) as u8
}

/// Quantizes every coefficient into magnitudes plus a packed per-pixel
/// byte `meta = planes_of(k) << 1 | sign`. The sorting passes only ever
/// need a pixel's MSB position and its sign, both read at the same index
/// at discovery time — packing them into one byte halves the number of
/// random cache lines the hottest loop touches. Because the MSB occupies
/// the high bits, `meta` values order exactly like their MSBs, so the
/// max pyramid can be built over `meta` directly: `region_max(..) >> 1`
/// is the region's true `planes_of` max. (`planes_of(k) <= 63` since
/// magnitudes saturate at 2^62, so the packed byte cannot overflow.)
/// Shares [`quantize_one`] with [`quantize_all`] so the production and
/// reference paths cannot drift in their dead-zone handling.
pub(crate) fn quantize_meta(coeffs: &[f64], q: f64) -> (Vec<u64>, Vec<u8>) {
    let inv_q = 1.0 / q;
    let mut k = Vec::with_capacity(coeffs.len());
    let mut meta = Vec::with_capacity(coeffs.len());
    for &c in coeffs {
        let kv = quantize_one(c, inv_q);
        k.push(kv);
        meta.push((planes_of(kv) << 1) | (c < 0.0) as u8);
    }
    (k, meta)
}

/// The reconstruction the decoder produces from a *complete* (quality-mode)
/// stream, computed directly from the input. The SPERR pipeline uses this
/// to locate outliers without a decode pass; equality with [`decode`] is
/// enforced by tests.
///
/// [`decode`]: crate::decode
pub fn reconstruct_quantized(coeffs: &[f64], q: f64) -> Vec<f64> {
    let mut out = vec![0.0; coeffs.len()];
    reconstruct_quantized_into(coeffs, q, &mut out);
    out
}

/// Allocation-free variant of [`reconstruct_quantized`]: writes into a
/// caller-provided slice of the same length (hot-path buffer reuse).
pub fn reconstruct_quantized_into(coeffs: &[f64], q: f64, out: &mut [f64]) {
    assert!(q > 0.0 && q.is_finite(), "quantization step must be positive");
    assert_eq!(coeffs.len(), out.len());
    let inv_q = 1.0 / q;
    for (o, &c) in out.iter_mut().zip(coeffs) {
        let k = quantize_one(c, inv_q);
        *o = if k == 0 {
            0.0
        } else {
            let mag = (k as f64 + 0.5) * q;
            if c < 0.0 {
                -mag
            } else {
                mag
            }
        };
    }
}

/// Signals that the bit budget has been exhausted (encoder) or the stream
/// ran out (decoder); unwinds the pass cleanly.
struct Stop;

// ---------------------------------------------------------------- encoder

/// The word-granular encoder. `CHECKED` selects the budget discipline at
/// monomorphization time: `true` for [`Termination::BitBudget`] (every
/// write is bounds-checked against the budget, at run granularity for
/// bulk writes), `false` for [`Termination::Quality`] (no budget exists,
/// so the per-bit `len_bits() >= budget` comparison the old path paid on
/// every single bit compiles out entirely; a debug assertion documents
/// the invariant).
struct Encoder<'a, const D: usize, const CHECKED: bool> {
    dims: [usize; D],
    k: &'a [u64],
    /// Per-coefficient `planes_of(k) << 1 | sign` (see [`quantize_meta`]).
    /// Significance only ever compares MSB positions, so the sorting
    /// passes run entirely on this `u8` array (and the `u8` pyramid
    /// below) — 8× less memory traffic than gathering from `k`, which
    /// matters once `k` outgrows the cache; the full magnitudes are only
    /// read once per coefficient, at discovery.
    meta: &'a [u8],
    pyramid: &'a MaxPyramid<'a, u8, D>,
    /// Insignificant sets, bucketed by partition level (deeper == smaller;
    /// deeper buckets are processed first, i.e. smallest sets first).
    /// Every stored set carries its cached `msb_plus1`.
    lis: Vec<Vec<SetS<D>>>,
    /// Magnitudes of previously significant coefficients, in discovery
    /// order. The refinement pass only ever needs bit `n` of each
    /// magnitude, so the values are stored contiguously here (copied once
    /// at discovery) and every refinement pass is a sequential scan —
    /// storing indices instead would turn the hottest loop in the encoder
    /// into a random gather over the full `k` array.
    lsp_k: Vec<u64>,
    lsp_new: Vec<u64>,
    out: BitWriter,
    budget: usize,
    significance_bits: usize,
    sign_bits: usize,
    refinement_bits: usize,
    sets_split: usize,
    zero_runs: usize,
}

impl<'a, const D: usize, const CHECKED: bool> Encoder<'a, D, CHECKED> {
    #[inline]
    fn emit(&mut self, bit: bool) -> Result<(), Stop> {
        if CHECKED {
            if self.out.len_bits() >= self.budget {
                return Err(Stop);
            }
        } else {
            debug_assert!(self.out.len_bits() < self.budget);
        }
        self.out.put_bit(bit);
        Ok(())
    }

    /// Emits `run` guaranteed-zero significance bits in one bulk write.
    /// In `CHECKED` mode the budget is enforced at run granularity: the
    /// run is truncated to the remaining budget and the encoder stops at
    /// exactly the bit the per-bit reference path would have stopped at.
    #[inline]
    fn emit_zero_run(&mut self, run: usize) -> Result<(), Stop> {
        if run == 0 {
            return Ok(());
        }
        self.zero_runs += 1;
        if CHECKED {
            let room = self.budget - self.out.len_bits();
            if run > room {
                self.out.put_zeros(room);
                self.significance_bits += room;
                return Err(Stop);
            }
        }
        self.out.put_zeros(run);
        self.significance_bits += run;
        Ok(())
    }

    fn push_lis(&mut self, set: SetS<D>) {
        let lvl = set.part_level as usize;
        if self.lis.len() <= lvl {
            self.lis.resize_with(lvl + 1, Vec::new);
        }
        self.lis[lvl].push(set);
    }

    /// One sorting pass at plane `n`. Smallest sets first (paper, Listing
    /// 2: "in increasing order of their sizes"): iterate buckets from the
    /// deepest partition level.
    ///
    /// Each bucket is compacted in place — surviving (still-insignificant)
    /// sets slide to the front instead of being drained into a fresh
    /// vector, so bucket storage is allocated once and reused across
    /// planes. Thanks to the cached `msb_plus1`, an insignificant set
    /// costs one integer compare and contributes one bit to a pending
    /// zero-run; only significant sets take the (rare) slow path. New sets
    /// created by splits always land in *deeper* buckets, which this pass
    /// already finished, so in-place mutation never aliases the iteration.
    fn sorting_pass(&mut self, n: u32) -> Result<(), Stop> {
        for lvl in (0..self.lis.len()).rev() {
            let len = self.lis[lvl].len();
            let mut write = 0usize;
            let mut run = 0usize; // pending guaranteed-zero significance bits
            for read in 0..len {
                let set = self.lis[lvl][read];
                if (set.msb_plus1 as u32) <= n {
                    // Still insignificant: its bit is a guaranteed zero.
                    run += 1;
                    self.lis[lvl][write] = set;
                    write += 1;
                    continue;
                }
                self.emit_zero_run(std::mem::take(&mut run))?;
                self.emit(true)?;
                self.significance_bits += 1;
                if set.is_pixel() {
                    let idx = set.pixel_index(self.dims);
                    self.emit(self.meta[idx] & 1 == 1)?;
                    self.sign_bits += 1;
                    self.lsp_new.push(self.k[idx]);
                } else {
                    self.code_s(&set, n)?;
                }
                // Significant sets are consumed (not kept in the LIS).
            }
            self.emit_zero_run(run)?;
            self.lis[lvl].truncate(write);
        }
        Ok(())
    }

    /// Processes a freshly split child set at plane `n` (children of a
    /// significant set are examined immediately, per the paper).
    fn process_child(&mut self, set: SetS<D>, n: u32) -> Result<(), Stop> {
        let sig = (set.msb_plus1 as u32) > n;
        self.emit(sig)?;
        self.significance_bits += 1;
        if sig {
            if set.is_pixel() {
                let idx = set.pixel_index(self.dims);
                self.emit(self.meta[idx] & 1 == 1)?;
                self.sign_bits += 1;
                self.lsp_new.push(self.k[idx]);
            } else {
                self.code_s(&set, n)?;
            }
        } else {
            self.push_lis(set);
        }
        Ok(())
    }

    /// Splits a significant set and processes its children. Each child's
    /// significance cache is computed here, exactly once in its lifetime:
    /// pixels read the `msb` array directly, cuboids pay one (u8) pyramid
    /// query — after which every future significance test on the child
    /// (one per plane while it waits in the LIS) is a compare.
    fn code_s(&mut self, set: &SetS<D>, n: u32) -> Result<(), Stop> {
        self.sets_split += 1;
        let mut children = [*set; 8];
        let mut count = 0usize;
        set.split(|c| {
            children[count] = c;
            count += 1;
        });
        for child in children.iter_mut().take(count) {
            child.msb_plus1 = if child.is_pixel() {
                self.meta[child.pixel_index(self.dims)] >> 1
            } else {
                self.pyramid.region_max(child.origin, child.len) >> 1
            };
            self.process_child(*child, n)?;
        }
        Ok(())
    }

    /// One refinement pass at plane `n`: bit `n` of every previously
    /// significant coefficient, gathered 64 at a time into a word and
    /// emitted with a single bulk write. In `CHECKED` mode a word that
    /// would overrun the budget is truncated to the remaining bits, so
    /// termination lands on exactly the same bit as the per-bit path.
    fn refinement_pass(&mut self, n: u32) -> Result<(), Stop> {
        let len = self.lsp_k.len();
        let mut i = 0usize;
        while i < len {
            let w = (len - i).min(64);
            let mut word = 0u64;
            for (j, &kv) in self.lsp_k[i..i + w].iter().enumerate() {
                word |= ((kv >> n) & 1) << j;
            }
            if CHECKED {
                let room = self.budget - self.out.len_bits();
                if w > room {
                    self.out.put_bits(word, room as u32);
                    self.refinement_bits += room;
                    return Err(Stop);
                }
            }
            self.out.put_bits(word, w as u32);
            self.refinement_bits += w;
            i += w;
        }
        // Newly significant points join the LSP *after* the refinement pass
        // (their bit `n` is implied by the significance test itself).
        let new = std::mem::take(&mut self.lsp_new);
        self.lsp_k.extend(new);
        Ok(())
    }

    fn run(&mut self, num_planes: u8) {
        for n in (0..num_planes as u32).rev() {
            let _plane = sperr_telemetry::span!("speck.encode.plane", n);
            if self.sorting_pass(n).is_err() {
                return;
            }
            if self.refinement_pass(n).is_err() {
                return;
            }
        }
    }
}

fn encode_with<const D: usize, const CHECKED: bool>(
    dims: [usize; D],
    k: &[u64],
    meta: &[u8],
    pyramid: &MaxPyramid<'_, u8, D>,
    num_planes: u8,
    budget: usize,
    n_total: usize,
) -> EncodedSpeck {
    let mut root = SetS::root(dims);
    root.msb_plus1 = num_planes;
    let mut enc = Encoder::<'_, D, CHECKED> {
        dims,
        k,
        meta,
        pyramid,
        lis: vec![vec![root]],
        lsp_k: Vec::new(),
        lsp_new: Vec::new(),
        out: BitWriter::with_capacity_bits(n_total / 2),
        budget,
        significance_bits: 0,
        sign_bits: 0,
        refinement_bits: 0,
        sets_split: 0,
        zero_runs: 0,
    };
    enc.run(num_planes);
    let bits_used = enc.out.len_bits();
    EncodedSpeck {
        significance_bits: enc.significance_bits,
        sign_bits: enc.sign_bits,
        refinement_bits: enc.refinement_bits,
        sets_split: enc.sets_split,
        zero_runs: enc.zero_runs,
        stream: enc.out.into_bytes(),
        num_planes,
        bits_used,
    }
}

/// Encodes `coeffs` (shape `dims`, row-major with axis 0 fastest) with
/// finest quantization step `q > 0`.
pub fn encode<const D: usize>(
    coeffs: &[f64],
    dims: [usize; D],
    q: f64,
    term: Termination,
) -> EncodedSpeck {
    assert!(q > 0.0 && q.is_finite(), "quantization step must be positive");
    let n_total: usize = dims.iter().product();
    assert_eq!(coeffs.len(), n_total, "coeffs/dims mismatch");
    assert!(n_total as u64 <= u32::MAX as u64, "domain too large for u32 indices");

    let (k, meta) = quantize_meta(coeffs, q);
    let pyramid = MaxPyramid::build(&meta, dims);
    let num_planes = pyramid.global_max() >> 1;
    if num_planes == 0 {
        return EncodedSpeck {
            stream: Vec::new(),
            num_planes: 0,
            bits_used: 0,
            significance_bits: 0,
            sign_bits: 0,
            refinement_bits: 0,
            sets_split: 0,
            zero_runs: 0,
        };
    }

    match term {
        Termination::Quality => {
            encode_with::<D, false>(dims, &k, &meta, &pyramid, num_planes, usize::MAX, n_total)
        }
        Termination::BitBudget(b) => {
            encode_with::<D, true>(dims, &k, &meta, &pyramid, num_planes, b, n_total)
        }
    }
}
