//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so the workspace ships this minimal, API-compatible subset instead:
//! `StdRng`, `SeedableRng::seed_from_u64`, and `Rng::random` for the
//! primitive types the workspace samples. The generator is SplitMix64 —
//! deterministic, fast, and statistically more than adequate for seeded
//! synthetic-data generation and tests (it is the seeding PRNG the real
//! rand ecosystem uses for exactly this job).

/// Seedable RNG constructor, mirroring `rand::SeedableRng`'s one method
/// this workspace calls.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface, mirroring the `rand::Rng` methods this workspace
/// calls.
pub trait Rng {
    /// Next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of `T` from the standard distribution: uniform in
    /// `[0, 1)` for floats, uniform over all values for integers/bool.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

/// Types samplable by [`Rng::random`].
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete RNG types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit PRNG (SplitMix64). Stands in for rand's
    /// `StdRng`; every consumer in this workspace seeds it explicitly, so
    /// reproducibility — not cryptographic strength — is the contract.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(9);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "{trues} trues");
    }
}
