/// An append-only bit sink that packs bits LSB-first into bytes.
///
/// The hot path of both SPECK and the outlier coder is `put_bit`, called
/// once per significance test / sign / refinement decision, so it is kept
/// branch-light: bits accumulate in a 64-bit register that is flushed to the
/// byte vector once full.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits not yet flushed to `bytes`, LSB-first.
    acc: u64,
    /// Number of valid bits in `acc` (0..64).
    acc_len: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with capacity reserved for `bits` bits.
    pub fn with_capacity_bits(bits: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(bits / 8 + 8),
            acc: 0,
            acc_len: 0,
        }
    }

    /// Appends a single bit.
    #[inline]
    pub fn put_bit(&mut self, bit: bool) {
        self.acc |= (bit as u64) << self.acc_len;
        self.acc_len += 1;
        if self.acc_len == 64 {
            self.flush_acc();
        }
    }

    /// Appends the `n` least-significant bits of `value`, LSB first.
    /// `n` must be <= 64.
    #[inline]
    pub fn put_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        let value = if n == 64 { value } else { value & ((1u64 << n) - 1) };
        let room = 64 - self.acc_len;
        if n <= room {
            self.acc |= value << self.acc_len;
            self.acc_len += n;
            if self.acc_len == 64 {
                self.flush_acc();
            }
        } else {
            // Split across the accumulator boundary.
            self.acc |= value << self.acc_len;
            let consumed = room;
            self.acc_len = 64;
            self.flush_acc();
            self.acc = value >> consumed;
            self.acc_len = n - consumed;
        }
    }

    /// Appends `n` zero bits in one call. Equivalent to `n` calls of
    /// `put_bit(false)` but O(n/8): the accumulator is topped up (its
    /// unused high bits are already zero by invariant), whole zero bytes
    /// are appended directly, and the remainder becomes the new partial
    /// accumulator. This is the bulk path behind SPECK's run-coalesced
    /// emission of guaranteed-insignificant significance bits.
    pub fn put_zeros(&mut self, n: usize) {
        let room = (64 - self.acc_len) as usize;
        if n < room {
            self.acc_len += n as u32;
            return;
        }
        let rest = n - room;
        self.acc_len = 64;
        self.flush_acc();
        // acc == 0 and acc_len == 0 now; append whole zero bytes, then
        // leave the sub-byte remainder as pending accumulator bits.
        self.bytes.resize(self.bytes.len() + rest / 8, 0);
        self.acc_len = (rest % 8) as u32;
    }

    /// Pads with zero bits up to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        let rem = self.len_bits() % 8;
        if rem != 0 {
            self.put_bits(0, 8 - rem as u32);
        }
    }

    /// Total number of bits written so far.
    #[inline]
    pub fn len_bits(&self) -> usize {
        self.bytes.len() * 8 + self.acc_len as usize
    }

    /// Consumes the writer, returning the packed bytes. The final partial
    /// byte (if any) is zero-padded in its high bits.
    pub fn into_bytes(mut self) -> Vec<u8> {
        let tail_bits = self.acc_len;
        let acc = self.acc;
        let mut bits_left = tail_bits;
        let mut a = acc;
        while bits_left > 0 {
            self.bytes.push((a & 0xFF) as u8);
            a >>= 8;
            bits_left = bits_left.saturating_sub(8);
        }
        self.bytes
    }

    #[inline]
    fn flush_acc(&mut self) {
        debug_assert_eq!(self.acc_len, 64);
        self.bytes.extend_from_slice(&self.acc.to_le_bytes());
        self.acc = 0;
        self.acc_len = 0;
    }
}
