//! Tier-2: the differential oracles over the whole corpus — blocked
//! lifting vs reference, production encoder vs from-parts reference
//! pipeline, container bit identity at 1/2/4/8 threads, resilient vs
//! strict decoding, and re-encode stability for all five codecs.

use sperr_compress_api::{Bound, LossyCompressor};
use sperr_conformance::corpus::{corpus_inputs, documented_budget, CodecId};
use sperr_conformance::oracle;
use sperr_core::{Sperr, SperrConfig};
use sperr_wavelet::stress::{ReverseOrder, StripedWorkers};
use sperr_wavelet::{Kernel, LineExecutor, Serial};

/// Chunk shape used throughout: small enough that the 3D corpus inputs
/// split into several chunks, so the pool actually schedules work.
const CHUNK: [usize; 3] = [16, 16, 16];

#[test]
fn blocked_lifting_matches_reference_under_adversarial_executors() {
    for input in corpus_inputs() {
        let field = input.generate();
        for exec in [&Serial as &dyn LineExecutor, &ReverseOrder, &StripedWorkers(3)] {
            for kernel in [Kernel::Cdf97, Kernel::Haar] {
                oracle::blocked_lifting_matches_reference_with(&field.data, field.dims, kernel, exec)
                    .unwrap_or_else(|f| panic!("{} ({kernel:?}): {f}", input.id));
            }
        }
    }
}

#[test]
fn production_encoder_matches_reference_pipeline() {
    for input in corpus_inputs() {
        let field = input.generate();
        for idx in [10, 15, 20] {
            let t = field.tolerance_for_idx(idx);
            oracle::encoder_matches_reference(&field.data, field.dims, t, 1.5, Kernel::Cdf97)
                .unwrap_or_else(|f| panic!("{} idx {idx}: {f}", input.id));
        }
    }
}

#[test]
fn streams_are_bit_identical_across_1_2_4_8_threads() {
    for input in corpus_inputs() {
        let field = input.generate();
        let t = field.tolerance_for_idx(15);
        for bound in [Bound::Pwe(t), Bound::Bpp(2.0)] {
            oracle::thread_count_bit_identity(&field, bound, CHUNK, &[1, 2, 4, 8])
                .unwrap_or_else(|f| panic!("{} {bound:?}: {f}", input.id));
        }
    }
}

#[test]
fn resilient_decoder_matches_strict_on_clean_streams() {
    let sperr =
        Sperr::new(SperrConfig { chunk_dims: CHUNK, num_threads: 1, ..SperrConfig::default() });
    for input in corpus_inputs() {
        let field = input.generate();
        let t = field.tolerance_for_idx(15);
        for bound in [Bound::Pwe(t), Bound::Bpp(2.0)] {
            let stream = sperr.compress(&field, bound).unwrap();
            oracle::resilient_matches_strict(&sperr, &stream)
                .unwrap_or_else(|f| panic!("{} {bound:?}: {f}", input.id));
        }
    }
}

#[test]
fn f32_native_path_matches_widened_path_across_threads() {
    for input in corpus_inputs() {
        let field32 = input.generate_f32();
        let t = field32.tolerance_for_idx(15);
        oracle::f32_vs_widened(&field32, t, CHUNK, &[1, 2, 4, 8])
            .unwrap_or_else(|f| panic!("{}: {f}", input.id));
    }
}

#[test]
fn reencoding_a_reconstruction_stays_within_budget_for_all_codecs() {
    for input in corpus_inputs() {
        let field = input.generate();
        let t = field.tolerance_for_idx(15);
        for codec in CodecId::ALL {
            let compressor = codec.build();
            let bound =
                if compressor.supports(&Bound::Pwe(t)) { Bound::Pwe(t) } else { Bound::Psnr(60.0) };
            let budget = documented_budget(codec, bound, field.dims);
            oracle::reencode_idempotent(compressor.as_ref(), &field, bound, budget)
                .unwrap_or_else(|f| panic!("{} {}: {f}", input.id, codec.tag()));
        }
    }
}
