//! Ablation on the SZ baseline's predictor: SZ3's multilevel cubic
//! interpolation vs. the classic Lorenzo predictor (SZ1.4/SZ2) at matched
//! tolerances — the evolution step inside the SZ family that the paper's
//! §II sketches ("the SZ family of compressors, which have explored a
//! variety of mathematical predictors").

use sperr_compress_api::{Bound, LossyCompressor};
use sperr_datagen::SyntheticField;
use sperr_sz_like::{sz_lorenzo, SzLike};

fn main() {
    sperr_bench::banner(
        "Ablation — SZ predictor: multilevel interpolation vs Lorenzo",
        "§II (SZ family predictor evolution)",
    );
    let interp = SzLike::default();
    let lorenzo = sz_lorenzo();
    println!("case,predictor,bpp,psnr_db");
    for f in [
        SyntheticField::MirandaPressure,
        SyntheticField::S3dTemperature,
        SyntheticField::NyxDarkMatterDensity,
    ] {
        let field = sperr_bench::bench_field(f);
        for idx in [10u32, 20] {
            let t = field.tolerance_for_idx(idx);
            for (name, comp) in
                [("interpolation", &interp as &dyn LossyCompressor), ("lorenzo", &lorenzo)]
            {
                let stream = comp.compress(&field, Bound::Pwe(t)).expect("compress");
                let rec = comp.decompress(&stream).expect("decompress");
                println!(
                    "{},{name},{:.4},{:.2}",
                    f.abbrev(idx),
                    stream.len() as f64 * 8.0 / field.len() as f64,
                    sperr_metrics::psnr(&field.data, &rec.data),
                );
            }
        }
    }
    println!("# expected: interpolation wins on smooth non-separable data,");
    println!("# matching SZ3's move away from Lorenzo.");
}
