//! Property tests for the lossless stage's decode path: arbitrary payloads
//! round-trip, and corrupt or truncated streams produce typed errors —
//! never panics, never runaway allocations.

use proptest::prelude::*;
use sperr_lossless::{compress, decompress};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_arbitrary_payloads(data in prop::collection::vec(any::<u8>(), 0..2000)) {
        let stream = compress(&data);
        prop_assert_eq!(decompress(&stream).unwrap(), data);
    }

    #[test]
    fn truncation_at_every_byte_boundary_never_panics(
        data in prop::collection::vec(any::<u8>(), 0..600)
    ) {
        // Unlike the embedded coders, a truncated lossless stream is NOT
        // decodable — but every proper prefix must fail with a clean error
        // (or, for a handful of prefixes that still parse, decode to some
        // byte vector), never a panic.
        let stream = compress(&data);
        for cut in 0..stream.len() {
            let _ = decompress(&stream[..cut]);
        }
    }

    #[test]
    fn bit_flips_never_panic(data in prop::collection::vec(any::<u8>(), 1..600),
                             pos_seed in any::<u64>(),
                             bit in 0u8..8) {
        let stream = compress(&data);
        let mut bad = stream.clone();
        let pos = (pos_seed as usize) % bad.len();
        bad[pos] ^= 1 << bit;
        let _ = decompress(&bad); // any Result; a panic is a bug
    }

    #[test]
    fn random_garbage_never_panics(garbage in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = decompress(&garbage);
    }
}
