//! SPERR container format: a fixed 20-byte header (the paper's §V-A notes
//! a fixed twenty-byte header whose cost is included in all evaluations),
//! an extended header, per-chunk tables, and the concatenated chunk
//! bitstreams.

use crate::pipeline::ChunkEncoding;
use sperr_bitstream::{ByteReader, ByteWriter};
use sperr_compress_api::{CompressError, Precision};
use sperr_wavelet::Kernel;

pub(crate) const MAGIC: &[u8; 4] = b"SPRR";
pub(crate) const VERSION: u8 = 1;

/// Termination mode recorded in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Point-wise-error bounded (`bound_value` = tolerance t).
    Pwe,
    /// Size bounded (`bound_value` = target bits per point).
    Bpp,
    /// Average-error targeted (`bound_value` = target PSNR in dB); the
    /// §VII extension.
    Rmse,
}

/// Parsed container metadata.
#[derive(Debug, Clone)]
pub(crate) struct Header {
    pub mode: Mode,
    pub kernel: Kernel,
    pub precision: Precision,
    pub dims: [usize; 3],
    pub chunk_dims: [usize; 3],
    /// PWE tolerance (PWE mode) or target bits-per-point (BPP mode).
    pub bound_value: f64,
    pub n_chunks: usize,
}

/// Per-chunk table entry.
#[derive(Debug, Clone)]
pub(crate) struct ChunkEntry {
    pub q: f64,
    pub num_planes: u8,
    pub max_n: u8,
    /// Informational (cost accounting by external tools); not needed to
    /// decode.
    #[allow(dead_code)]
    pub num_outliers: u32,
    pub speck_len: usize,
    pub outlier_len: usize,
}

fn kernel_tag(k: Kernel) -> u8 {
    match k {
        Kernel::Cdf97 => 0,
        Kernel::Cdf53 => 1,
        Kernel::Haar => 2,
    }
}

fn kernel_from_tag(tag: u8) -> Result<Kernel, CompressError> {
    match tag {
        0 => Ok(Kernel::Cdf97),
        1 => Ok(Kernel::Cdf53),
        2 => Ok(Kernel::Haar),
        _ => Err(CompressError::Corrupt(format!("unknown kernel tag {tag}"))),
    }
}

/// Serializes header + chunk table + payloads.
pub(crate) fn write_container(header: &Header, chunks: &[ChunkEncoding]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    // Fixed 20-byte header.
    w.put_bytes(MAGIC);
    w.put_u8(VERSION);
    w.put_u8(match header.mode {
        Mode::Pwe => 0,
        Mode::Bpp => 1,
        Mode::Rmse => 2,
    });
    w.put_u8(kernel_tag(header.kernel));
    w.put_u8(match header.precision {
        Precision::Double => 0,
        Precision::Single => 1,
    });
    w.put_u32(header.dims[0] as u32);
    w.put_u32(header.dims[1] as u32);
    w.put_u32(header.dims[2] as u32);
    debug_assert_eq!(w.len(), 20);
    // Extended header.
    w.put_f64(header.bound_value);
    w.put_u32(header.chunk_dims[0] as u32);
    w.put_u32(header.chunk_dims[1] as u32);
    w.put_u32(header.chunk_dims[2] as u32);
    w.put_u32(chunks.len() as u32);
    // Chunk table.
    for c in chunks {
        w.put_f64(c.q);
        w.put_u8(c.num_planes);
        w.put_u8(c.max_n);
        w.put_u32(c.num_outliers);
        w.put_u32(c.speck_stream.len() as u32);
        w.put_u32(c.outlier_stream.len() as u32);
    }
    // Payloads.
    for c in chunks {
        w.put_bytes(&c.speck_stream);
        w.put_bytes(&c.outlier_stream);
    }
    w.into_bytes()
}

/// Parses a container, returning metadata, the chunk table and the
/// payload cursor (as byte offsets into `bytes`).
pub(crate) fn read_container(
    bytes: &[u8],
) -> Result<(Header, Vec<ChunkEntry>, usize), CompressError> {
    let mut r = ByteReader::new(bytes);
    if r.get_bytes(4)? != MAGIC {
        return Err(CompressError::Corrupt("bad magic".into()));
    }
    let version = r.get_u8()?;
    if version != VERSION {
        return Err(CompressError::Corrupt(format!("unsupported version {version}")));
    }
    let mode = match r.get_u8()? {
        0 => Mode::Pwe,
        1 => Mode::Bpp,
        2 => Mode::Rmse,
        m => return Err(CompressError::Corrupt(format!("unknown mode {m}"))),
    };
    let kernel = kernel_from_tag(r.get_u8()?)?;
    let precision = match r.get_u8()? {
        0 => Precision::Double,
        1 => Precision::Single,
        p => return Err(CompressError::Corrupt(format!("unknown precision {p}"))),
    };
    let dims = [r.get_u32()? as usize, r.get_u32()? as usize, r.get_u32()? as usize];
    if dims.iter().any(|&d| d == 0) {
        return Err(CompressError::Corrupt("zero dimension".into()));
    }
    let bound_value = r.get_f64()?;
    let chunk_dims =
        [r.get_u32()? as usize, r.get_u32()? as usize, r.get_u32()? as usize];
    if chunk_dims.iter().any(|&d| d == 0) {
        return Err(CompressError::Corrupt("zero chunk dimension".into()));
    }
    let n_chunks = r.get_u32()? as usize;
    let expected = crate::chunk::chunk_grid(dims, chunk_dims).len();
    if n_chunks != expected {
        return Err(CompressError::Corrupt(format!(
            "chunk count {n_chunks} does not match grid {expected}"
        )));
    }
    let mut entries = Vec::with_capacity(n_chunks);
    for _ in 0..n_chunks {
        let q = r.get_f64()?;
        let num_planes = r.get_u8()?;
        let max_n = r.get_u8()?;
        let num_outliers = r.get_u32()?;
        let speck_len = r.get_u32()? as usize;
        let outlier_len = r.get_u32()? as usize;
        if !(q > 0.0) || !q.is_finite() {
            return Err(CompressError::Corrupt("invalid quantization step".into()));
        }
        entries.push(ChunkEntry { q, num_planes, max_n, num_outliers, speck_len, outlier_len });
    }
    let payload_start = r.position();
    let payload_total: usize = entries.iter().map(|e| e.speck_len + e.outlier_len).sum();
    if bytes.len() < payload_start + payload_total {
        return Err(CompressError::Corrupt("truncated payload section".into()));
    }
    Ok((
        Header { mode, kernel, precision, dims, chunk_dims, bound_value, n_chunks },
        entries,
        payload_start,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StageTimes;

    fn dummy_chunk(speck: Vec<u8>, outlier: Vec<u8>) -> ChunkEncoding {
        ChunkEncoding {
            speck_bits: speck.len() * 8,
            outlier_bits: outlier.len() * 8,
            speck_stream: speck,
            outlier_stream: outlier,
            q: 0.5,
            num_planes: 7,
            max_n: 3,
            num_outliers: 2,
            times: StageTimes::default(),
            coeff_sq_error: 0.0,
        }
    }

    #[test]
    fn header_is_exactly_20_bytes_before_extension() {
        let header = Header {
            mode: Mode::Pwe,
            kernel: Kernel::Cdf97,
            precision: Precision::Double,
            dims: [8, 8, 8],
            chunk_dims: [8, 8, 8],
            bound_value: 0.25,
            n_chunks: 1,
        };
        let bytes = write_container(&header, &[dummy_chunk(vec![1, 2, 3], vec![])]);
        assert_eq!(&bytes[..4], MAGIC);
        // dims start at offset 8, occupy 12 bytes -> fixed header = 20.
        let (parsed, entries, payload_start) = read_container(&bytes).unwrap();
        assert_eq!(parsed.dims, [8, 8, 8]);
        assert_eq!(entries.len(), 1);
        assert_eq!(&bytes[payload_start..payload_start + 3], &[1, 2, 3]);
    }

    #[test]
    fn roundtrip_multiple_chunks() {
        let header = Header {
            mode: Mode::Bpp,
            kernel: Kernel::Cdf53,
            precision: Precision::Single,
            dims: [20, 8, 8],
            chunk_dims: [10, 8, 8],
            bound_value: 2.0,
            n_chunks: 2,
        };
        let chunks = vec![dummy_chunk(vec![9; 5], vec![7; 2]), dummy_chunk(vec![1; 3], vec![])];
        let bytes = write_container(&header, &chunks);
        let (parsed, entries, payload_start) = read_container(&bytes).unwrap();
        assert_eq!(parsed.mode, Mode::Bpp);
        assert_eq!(parsed.kernel, Kernel::Cdf53);
        assert_eq!(parsed.precision, Precision::Single);
        assert_eq!(entries[0].speck_len, 5);
        assert_eq!(entries[0].outlier_len, 2);
        assert_eq!(entries[1].speck_len, 3);
        let payload = &bytes[payload_start..];
        assert_eq!(payload, &[9, 9, 9, 9, 9, 7, 7, 1, 1, 1]);
    }

    #[test]
    fn corrupt_inputs_rejected() {
        let header = Header {
            mode: Mode::Pwe,
            kernel: Kernel::Cdf97,
            precision: Precision::Double,
            dims: [8, 8, 8],
            chunk_dims: [8, 8, 8],
            bound_value: 0.25,
            n_chunks: 1,
        };
        let good = write_container(&header, &[dummy_chunk(vec![1, 2, 3], vec![])]);
        // magic
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(read_container(&bad).is_err());
        // version
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(read_container(&bad).is_err());
        // truncated payload
        let bad = &good[..good.len() - 2];
        assert!(read_container(bad).is_err());
        // zero dim
        let mut bad = good.clone();
        bad[8..12].fill(0);
        assert!(read_container(&bad).is_err());
    }
}
