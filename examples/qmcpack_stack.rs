//! The paper's QMCPACK configuration (§VI-B): the data set is a stack of
//! 3-D orbitals of size 69²×115, "best to be compressed as 288 individual
//! volumes. SPERR is configured to do so with its chunk size specified as
//! 69²×115" — while the other compressors, fed one 69²×33120 volume,
//! mix unrelated orbitals through their transforms.
//!
//! This example compresses a (smaller) stack both ways and shows the
//! difference chunk alignment makes.
//!
//! Run with: `cargo run --release --example qmcpack_stack`

use sperr_compress_api::{Bound, LossyCompressor};
use sperr_core::{Sperr, SperrConfig};
use sperr_datagen::qmcpack_stack;

fn main() {
    let n_orbitals = 6; // paper: 288; laptop-scale here
    let field = qmcpack_stack(n_orbitals, 77);
    let t = field.tolerance_for_idx(20);
    println!(
        "stack of {n_orbitals} orbitals: {}x{}x{} points, t = {t:.3e} (idx = 20)",
        field.dims[0], field.dims[1], field.dims[2]
    );

    // SPERR, the paper's way: one chunk per orbital.
    let per_orbital = Sperr::new(SperrConfig {
        chunk_dims: [69, 69, 115],
        ..SperrConfig::default()
    });
    // The "less than ideal" configuration: the whole stack as one volume.
    let monolithic = Sperr::new(SperrConfig {
        chunk_dims: [69, 69, 115 * n_orbitals],
        ..SperrConfig::default()
    });

    for (label, sperr) in [("per-orbital chunks", &per_orbital), ("one monolithic chunk", &monolithic)] {
        let (stream, stats) = sperr
            .compress_with_stats(&field, Bound::Pwe(t))
            .expect("compress");
        let rec = sperr.decompress(&stream).expect("decompress");
        let err = sperr_metrics::max_pwe(&field.data, &rec.data);
        assert!(err <= t);
        println!(
            "{label:22}: {:>9} bytes  ({:.3} bpp, {} chunks, gain {:+.3})",
            stream.len(),
            stats.bpp(),
            stats.num_chunks,
            sperr_metrics::accuracy_gain_of(&field.data, &rec.data, stream.len()),
        );
    }
    println!("\nper-orbital chunking respects orbital boundaries — no transform");
    println!("leakage across unrelated orbitals — and enables {n_orbitals}-way parallelism.");
}
