//! Lifting kernels: CDF 9/7 (the paper's choice), CDF 5/3 and Haar
//! (ablation alternatives).
//!
//! All kernels split a line into its even/odd bands *first*
//! ([`sperr_simd::split_even_odd`]) and then run every lifting step as a
//! contiguous elementwise pass over the bands
//! ([`sperr_simd::lift_pairs`]): the historical stride-2 loops over the
//! interleaved signal `[s0 d0 s1 d1 ...]` defeated vectorization, while
//! `d[i] += c * (s[i] + s[i+1])` over contiguous halves is a textbook
//! vector loop. Each output element computes the *same expression with
//! the same operand order* as the strided original, so the results are
//! bit-identical (the SPECK conformance goldens depend on this). A
//! pleasant side effect: the forward de-interleave into the dyadic
//! `[approx... | detail...]` packing is now free — the bands are built
//! directly in that layout.
//!
//! Boundary handling is whole-sample symmetric extension: index `-i`
//! reflects to `i` and index `n-1+i` to `n-1-i`, matching QccPack.
//!
//! The line kernels are generic over [`Float`]; the lifting constants are
//! stored in `f64` and narrowed once per call (`T::from_f64`, round to
//! nearest) so both widths lift with the best representable constants.

use sperr_simd::Float;

/// Daubechies–Sweldens lifting constants for CDF 9/7.
const ALPHA: f64 = -1.586_134_342_059_924;
const BETA: f64 = -0.052_980_118_572_961;
const GAMMA: f64 = 0.882_911_075_530_934;
const DELTA: f64 = 0.443_506_852_043_971;
/// Final scaling chosen so the analysis low-pass has DC gain √2, i.e. the
/// synthesis basis functions have approximately unit norm (§III-A).
const ZETA: f64 = std::f64::consts::SQRT_2 / 1.230_174_104_914_001;
const INV_ZETA: f64 = 1.0 / ZETA;

/// Which wavelet filter bank to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Kernel {
    /// Cohen–Daubechies–Feauveau 9/7 — the paper's production choice.
    #[default]
    Cdf97,
    /// CDF 5/3 (LeGall) — shorter filters, cheaper, worse compaction.
    Cdf53,
    /// Haar — trivial two-tap kernel, the compaction floor.
    Haar,
}

impl Kernel {
    /// Human-readable name for harness output.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Cdf97 => "CDF 9/7",
            Kernel::Cdf53 => "CDF 5/3",
            Kernel::Haar => "Haar",
        }
    }

    /// One forward level on `buf[..n]`, leaving `[approx | detail]`.
    /// `scratch` must be at least `n` long.
    pub(crate) fn forward_line<T: Float>(self, buf: &mut [T], n: usize, scratch: &mut [T]) {
        debug_assert!(buf.len() >= n && scratch.len() >= n);
        if n < 2 {
            return;
        }
        let half = n.div_ceil(2);
        let (s, rest) = scratch.split_at_mut(half);
        let d = &mut rest[..n - half];
        sperr_simd::split_even_odd(&buf[..n], s, d);
        match self {
            Kernel::Cdf97 => {
                lift_detail(s, d, T::from_f64(ALPHA));
                lift_approx(s, d, T::from_f64(BETA));
                lift_detail(s, d, T::from_f64(GAMMA));
                lift_approx(s, d, T::from_f64(DELTA));
                sperr_simd::scale_in_place(s, T::from_f64(ZETA));
                sperr_simd::scale_in_place(d, T::from_f64(INV_ZETA));
            }
            Kernel::Cdf53 => {
                lift_detail(s, d, T::from_f64(-0.5));
                lift_approx(s, d, T::from_f64(0.25));
                sperr_simd::scale_in_place(s, T::from_f64(std::f64::consts::SQRT_2));
                sperr_simd::scale_in_place(d, T::from_f64(std::f64::consts::FRAC_1_SQRT_2));
            }
            Kernel::Haar => {
                // Pairwise orthonormal butterfly; a trailing unpaired sample
                // (which the split parked in the approx band) passes through.
                let c = T::from_f64(std::f64::consts::FRAC_1_SQRT_2);
                for (e, o) in s.iter_mut().zip(d.iter_mut()) {
                    let (a, b) = (*e, *o);
                    *e = (a + b) * c;
                    *o = (a - b) * c;
                }
            }
        }
        // The bands already sit in dyadic [approx | detail] order.
        buf[..n].copy_from_slice(&scratch[..n]);
    }

    /// One inverse level on `buf[..n]`, consuming `[approx | detail]`.
    pub(crate) fn inverse_line<T: Float>(self, buf: &mut [T], n: usize, scratch: &mut [T]) {
        debug_assert!(buf.len() >= n && scratch.len() >= n);
        if n < 2 {
            return;
        }
        // The dyadic packing *is* the band split — no gather needed.
        let half = n.div_ceil(2);
        let (s, d) = buf[..n].split_at_mut(half);
        match self {
            Kernel::Cdf97 => {
                sperr_simd::scale_in_place(s, T::from_f64(INV_ZETA));
                sperr_simd::scale_in_place(d, T::from_f64(ZETA));
                lift_approx(s, d, T::from_f64(-DELTA));
                lift_detail(s, d, T::from_f64(-GAMMA));
                lift_approx(s, d, T::from_f64(-BETA));
                lift_detail(s, d, T::from_f64(-ALPHA));
            }
            Kernel::Cdf53 => {
                sperr_simd::scale_in_place(s, T::from_f64(std::f64::consts::FRAC_1_SQRT_2));
                sperr_simd::scale_in_place(d, T::from_f64(std::f64::consts::SQRT_2));
                lift_approx(s, d, T::from_f64(-0.25));
                lift_detail(s, d, T::from_f64(0.5));
            }
            Kernel::Haar => {
                let c = T::from_f64(std::f64::consts::FRAC_1_SQRT_2);
                for (e, o) in s.iter_mut().zip(d.iter_mut()) {
                    let (lo, hi) = (*e, *o);
                    *e = (lo + hi) * c;
                    *o = (lo - hi) * c;
                }
            }
        }
        sperr_simd::merge_even_odd(s, d, &mut scratch[..n]);
        buf[..n].copy_from_slice(&scratch[..n]);
    }
}

/// Detail (odd-sample) lifting step on the split bands:
/// `d[i] += c * (s[i] + s[i+1])`, i.e. the strided
/// `x[2i+1] += c * (x[2i] + x[2i+2])` with both neighbours now adjacent
/// approx samples. When the line length is even the last detail sample's
/// right neighbour reflects (`x[n] -> x[n-2]`), which in band terms is
/// its own left neighbour.
#[inline]
fn lift_detail<T: Float>(s: &[T], d: &mut [T], c: T) {
    let ho = d.len();
    if ho == 0 {
        return;
    }
    if s.len() > ho {
        // Odd line length: every detail sample has both neighbours.
        sperr_simd::lift_pairs(d, &s[..ho], &s[1..ho + 1], c);
    } else {
        sperr_simd::lift_pairs(&mut d[..ho - 1], &s[..ho - 1], &s[1..ho], c);
        d[ho - 1] += c * T::from_f64(2.0) * s[ho - 1];
    }
}

/// Approx (even-sample) lifting step on the split bands:
/// `s[i] += c * (d[i-1] + d[i])`, i.e. the strided
/// `x[2i] += c * (x[2i-1] + x[2i+1])`. The first approx sample's left
/// neighbour reflects (`x[-1] -> x[1]`); when the line length is odd the
/// last one's right neighbour reflects too.
#[inline]
fn lift_approx<T: Float>(s: &mut [T], d: &[T], c: T) {
    let ho = d.len();
    debug_assert!(ho >= 1);
    s[0] += c * T::from_f64(2.0) * d[0];
    sperr_simd::lift_pairs(&mut s[1..ho], &d[..ho - 1], &d[1..ho], c);
    if s.len() > ho {
        s[ho] += c * T::from_f64(2.0) * d[ho - 1];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_layout_is_dyadic() {
        // forward(identity ramp) with Haar keeps the unpaired tail in the
        // approx band: [e0 e1 e2 | d0 d1] for n = 5.
        let mut x = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let mut scratch = vec![0.0; 5];
        Kernel::Haar.forward_line(&mut x, 5, &mut scratch);
        let c = std::f64::consts::FRAC_1_SQRT_2;
        assert_eq!(x, vec![1.0 * c, 5.0 * c, 4.0, -1.0 * c, -1.0 * c]);
    }

    #[test]
    fn line_roundtrips_all_kernels_all_lengths() {
        for kernel in [Kernel::Cdf97, Kernel::Cdf53, Kernel::Haar] {
            for n in 2..40usize {
                let orig: Vec<f64> = (0..n).map(|i| ((i * 29 % 13) as f64) - 6.0).collect();
                let mut x = orig.clone();
                let mut scratch = vec![0.0; n];
                kernel.forward_line(&mut x, n, &mut scratch);
                kernel.inverse_line(&mut x, n, &mut scratch);
                for (a, b) in x.iter().zip(&orig) {
                    assert!((a - b).abs() < 1e-10, "{kernel:?} n={n}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn two_sample_line_roundtrip() {
        for kernel in [Kernel::Cdf97, Kernel::Cdf53, Kernel::Haar] {
            let mut x = vec![1.0, -2.0];
            let mut scratch = vec![0.0; 2];
            kernel.forward_line(&mut x, 2, &mut scratch);
            kernel.inverse_line(&mut x, 2, &mut scratch);
            assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] + 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn kernel_names() {
        assert_eq!(Kernel::Cdf97.name(), "CDF 9/7");
        assert_eq!(Kernel::default(), Kernel::Cdf97);
    }
}
