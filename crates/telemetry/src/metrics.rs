//! Metrics data model: log-linear histograms, merged snapshots, and the
//! JSON / Prometheus text-exposition renderers. Everything here compiles
//! whether or not the `enabled` feature is on (like [`crate::Report`]),
//! so the CLI and bench exporters need no `cfg` of their own; only the
//! per-thread recording shards live behind the feature gate.
//!
//! # Bucket scheme
//!
//! Values are `u64` (nanoseconds, bytes, or plain counts). Buckets are
//! log-linear: values below 2^[`SUB_BITS`] get one bucket each (exact),
//! and every octave above is split into 2^[`SUB_BITS`] = 16 linear
//! sub-buckets. A bucket covering value `v` therefore has width at most
//! `v / 16`, so any quantile read off the bucket upper edge exceeds the
//! true sample value by at most **6.25% relative error** (plus ±1
//! absolute in the exact range). That bound is what the quantile
//! proptests in `tests/telemetry.rs` pin.
//!
//! 16 exact buckets + 60 octaves × 16 sub-buckets = 976 buckets ≈ 7.8 KiB
//! of counts per histogram — small enough to keep one histogram per
//! (label × thread) without blowing the per-thread footprint past the
//! event rings'.

/// Linear sub-bucket resolution: 2^SUB_BITS sub-buckets per octave.
pub const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;

/// Total bucket count covering the whole `u64` range.
pub const NUM_BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Maximum relative error of a quantile estimate vs the true sample
/// value (documented bound; see module docs).
pub const QUANTILE_REL_ERROR: f64 = 1.0 / SUB as f64;

/// Bucket index for a value. Total order preserving: `a <= b` implies
/// `bucket_index(a) <= bucket_index(b)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // position of leading 1, >= SUB_BITS
        let octave = (e - SUB_BITS) as usize;
        let sub = ((v >> (e - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        SUB + octave * SUB + sub
    }
}

/// Exclusive upper edge of a bucket: every value in bucket `i` is
/// strictly below this. Saturates at `u64::MAX` for the top bucket.
pub fn bucket_upper_edge(i: usize) -> u64 {
    if i < SUB {
        i as u64 + 1
    } else {
        let octave = (i - SUB) / SUB;
        let sub = ((i - SUB) % SUB) as u64;
        let e = octave as u32 + SUB_BITS;
        let width = 1u64 << octave;
        let lower = (1u64 << e) + sub * width;
        lower.saturating_add(width)
    }
}

/// What a histogram's values measure, deciding the Prometheus unit
/// suffix and scale (`Nanos` exports as seconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Unit {
    /// Durations recorded in nanoseconds; exported as `_seconds`.
    Nanos,
    /// Byte sizes; exported as `_bytes`.
    Bytes,
    /// Dimensionless counts (e.g. in-flight chunk occupancy).
    Units,
}

impl Unit {
    /// Prometheus metric-name suffix for this unit.
    pub fn suffix(self) -> &'static str {
        match self {
            Unit::Nanos => "_seconds",
            Unit::Bytes => "_bytes",
            Unit::Units => "",
        }
    }

    /// Scale factor from the recorded integer to the exported value.
    pub fn scale(self) -> f64 {
        match self {
            Unit::Nanos => 1e-9,
            Unit::Bytes | Unit::Units => 1.0,
        }
    }
}

/// A mergeable log-linear histogram with count/sum/min/max sidecars.
#[derive(Clone)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    /// `u64::MAX` while empty.
    pub min: u64,
    pub max: u64,
    counts: Box<[u64; NUM_BUCKETS]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            counts: Box::new([0u64; NUM_BUCKETS]),
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another histogram into this one. Bucket-wise addition, so
    /// the operation is associative and commutative (pinned by proptest)
    /// — per-thread shards can be merged in any order at snapshot time.
    pub fn merge_from(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Raw bucket counts (index via [`bucket_index`]).
    pub fn bucket_counts(&self) -> &[u64; NUM_BUCKETS] {
        &self.counts
    }

    /// Adds `n` pre-bucketed samples to bucket `i` without touching the
    /// count/sum/min/max sidecars — the shard drain sets those from its
    /// own exact atomics.
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    pub(crate) fn add_bucket_count(&mut self, i: usize, n: u64) {
        self.counts[i] += n;
    }

    /// Quantile estimate: the upper edge of the bucket holding the
    /// `q`-rank sample, clamped to the observed max. Guaranteed to be
    /// `>=` the true q-quantile sample and to exceed it by at most
    /// [`QUANTILE_REL_ERROR`] relatively (±1 absolute below 2^SUB_BITS).
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_edge(i).min(self.max);
            }
        }
        self.max
    }
}

/// One named histogram in a merged snapshot.
#[derive(Debug, Clone)]
pub struct MetricEntry {
    /// Dotted label as recorded (e.g. `stage.wavelet.forward`).
    pub name: String,
    pub unit: Unit,
    pub hist: Histogram,
}

impl MetricEntry {
    fn quantiles(&self) -> [(f64, u64); 4] {
        [
            (0.5, self.hist.quantile(0.5)),
            (0.9, self.hist.quantile(0.9)),
            (0.99, self.hist.quantile(0.99)),
            (0.999, self.hist.quantile(0.999)),
        ]
    }
}

/// A point-in-time merge of every thread's metric shards. Obtained from
/// [`crate::MetricsRegistry::snapshot`]; always empty without the
/// `enabled` feature.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Entries sorted by name.
    pub entries: Vec<MetricEntry>,
    /// Samples discarded because a thread exhausted its shard slots.
    pub dropped: u64,
}

impl MetricsSnapshot {
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up an entry by its recorded label.
    pub fn get(&self, name: &str) -> Option<&MetricEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Renders the snapshot as a JSON object: one key per metric with
    /// count/sum/min/max and the four tracked quantiles, all in the
    /// recorded integer unit (nanoseconds stay nanoseconds here; the
    /// Prometheus export is the one that scales to seconds).
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.entries.len() * 160);
        out.push_str("{\n  \"schema\": \"sperr-metrics/v1\",\n");
        out.push_str(&format!("  \"dropped\": {},\n", self.dropped));
        out.push_str("  \"metrics\": {");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let unit = match e.unit {
                Unit::Nanos => "ns",
                Unit::Bytes => "bytes",
                Unit::Units => "count",
            };
            let min = if e.hist.count == 0 { 0 } else { e.hist.min };
            out.push_str(&format!(
                "\n    {}: {{\"unit\": \"{unit}\", \"count\": {}, \"sum\": {}, \
                 \"min\": {min}, \"max\": {}",
                json_escape(&e.name),
                e.hist.count,
                e.hist.sum,
                e.hist.max,
            ));
            for (q, v) in e.quantiles() {
                out.push_str(&format!(", \"p{}\": {v}", (q * 1000.0) as u32));
            }
            out.push_str("}");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// one `summary` per histogram (quantile series plus `_sum`/`_count`)
    /// and a companion `_max` gauge carrying the high-water mark —
    /// summaries have no max of their own, and the arena/in-flight
    /// metrics exist precisely for their peaks. Label names are mangled
    /// to `sperr_<dotted_label><unit suffix>`; durations are scaled to
    /// seconds per Prometheus convention.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(256 + self.entries.len() * 400);
        for e in &self.entries {
            let name = format!("sperr_{}{}", mangle(&e.name), e.unit.suffix());
            let scale = e.unit.scale();
            out.push_str(&format!(
                "# HELP {name} Distribution of \"{}\" samples.\n",
                e.name
            ));
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, v) in e.quantiles() {
                out.push_str(&format!(
                    "{name}{{quantile=\"{q}\"}} {}\n",
                    fmt_value(v as f64 * scale)
                ));
            }
            out.push_str(&format!("{name}_sum {}\n", fmt_value(e.hist.sum as f64 * scale)));
            out.push_str(&format!("{name}_count {}\n", e.hist.count));
            out.push_str(&format!("# HELP {name}_max Peak \"{}\" sample.\n", e.name));
            out.push_str(&format!("# TYPE {name}_max gauge\n"));
            out.push_str(&format!("{name}_max {}\n", fmt_value(e.hist.max as f64 * scale)));
        }
        out.push_str(&format!(
            "# HELP sperr_metrics_dropped_samples Samples discarded on shard overflow.\n\
             # TYPE sperr_metrics_dropped_samples counter\n\
             sperr_metrics_dropped_samples {}\n",
            self.dropped
        ));
        out
    }
}

/// Dotted label → Prometheus metric-name fragment: anything outside
/// `[a-zA-Z0-9_]` becomes `_`.
fn mangle(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect()
}

/// Prometheus sample values: plain decimal, no exponent for the common
/// magnitudes the scrape consumes, finite by construction.
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let probes = [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1 << 20,
            (1 << 20) + 12345,
            u64::MAX / 2,
            u64::MAX,
        ];
        let mut prev = None;
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            if let Some((pv, pi)) = prev {
                assert!(pv <= v);
                assert!(pi <= i, "bucket order broken between {pv} and {v}");
            }
            // The value lies strictly below its bucket's upper edge …
            assert!(v < bucket_upper_edge(i) || bucket_upper_edge(i) == u64::MAX);
            // … and the edge respects the documented relative error.
            if v >= 16 {
                let edge = bucket_upper_edge(i);
                assert!(
                    edge as f64 <= v as f64 * (1.0 + QUANTILE_REL_ERROR) + 1.0,
                    "edge {edge} too far above {v}"
                );
            }
            prev = Some((v, i));
        }
    }

    #[test]
    fn record_and_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count, 1000);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1000);
        let p50 = h.quantile(0.5);
        assert!((500..=540).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((990..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [3u64, 17, 17, 900, 1 << 30] {
            a.record(v);
            both.record(v);
        }
        for v in [5u64, 17, 1 << 40] {
            b.record(v);
            both.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count, both.count);
        assert_eq!(a.sum, both.sum);
        assert_eq!(a.min, both.min);
        assert_eq!(a.max, both.max);
        assert_eq!(a.bucket_counts()[..], both.bucket_counts()[..]);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let mut h = Histogram::new();
        for v in [1_000_000u64, 2_000_000, 30_000_000] {
            h.record(v);
        }
        let snap = MetricsSnapshot {
            entries: vec![
                MetricEntry { name: "op.compress.f64".into(), unit: Unit::Nanos, hist: h.clone() },
                MetricEntry { name: "mem.arena".into(), unit: Unit::Bytes, hist: h },
            ],
            dropped: 0,
        };
        let text = snap.render_prometheus();
        assert!(text.ends_with('\n'));
        assert!(text.contains("# TYPE sperr_op_compress_f64_seconds summary"));
        assert!(text.contains("sperr_op_compress_f64_seconds{quantile=\"0.5\"} "));
        assert!(text.contains("sperr_op_compress_f64_seconds_count 3"));
        assert!(text.contains("# TYPE sperr_mem_arena_bytes_max gauge"));
        // Every non-comment line is `name[{labels}] value` with a finite
        // float value — the shape a Prometheus scraper requires.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
            let v: f64 = value.parse().expect("sample value parses as float");
            assert!(v.is_finite());
        }
    }

    #[test]
    fn json_snapshot_mentions_every_metric() {
        let mut h = Histogram::new();
        h.record(42);
        let snap = MetricsSnapshot {
            entries: vec![MetricEntry {
                name: "stream.in_flight".into(),
                unit: Unit::Units,
                hist: h,
            }],
            dropped: 2,
        };
        let json = snap.render_json();
        assert!(json.contains("\"sperr-metrics/v1\""));
        assert!(json.contains("\"stream.in_flight\""));
        assert!(json.contains("\"dropped\": 2"));
        assert!(json.contains("\"p999\""));
    }
}
