//! Fig. 11: outlier-coding efficiency — SPERR's SPECK-inspired outlier
//! coder vs. SZ's scheme (quantize correctors to integer multiples of the
//! tolerance, Huffman over all points with zero-valued inliers, ZSTD) —
//! on the *same* list of outliers intercepted from SPERR's pipeline.
//! Expected: SPERR ~10 bits/outlier everywhere, consistently 1–2 bits
//! cheaper than SZ's scheme (§VI-E).

use sperr_sz_like::compress_quant_bins;

fn main() {
    sperr_bench::banner(
        "Fig. 11 — outlier coding: SPERR coder vs SZ quant-bin scheme",
        "Figure 11 (Table II matrix, same outlier lists)",
    );
    println!("case,num_outliers,outlier_pct,sperr_bits_per_outlier,sz_bits_per_outlier,max_abs_code");
    for (f, idx) in sperr_bench::table2_matrix() {
        let field = sperr_bench::bench_field(f);
        let t = field.tolerance_for_idx(idx);
        // Intercept SPERR's pipeline at the default q = 1.5t.
        let outliers = sperr_bench::intercept_outliers(&field, t, 1.5);
        if outliers.is_empty() {
            println!("{},0,0.0,,,", f.abbrev(idx));
            continue;
        }
        // SPERR's coder.
        let enc = sperr_outlier::encode(&outliers, field.len(), t);
        let sperr_bpo = enc.bits_used as f64 / outliers.len() as f64;
        // SZ's scheme: one quantized corrector per data point (inliers 0),
        // codes as multiples of 2t, Huffman + lossless.
        let mut codes = vec![0i32; field.len()];
        let mut max_code = 0i32;
        for o in &outliers {
            let c = (o.corr / (2.0 * t)).round() as i32;
            // SPERR correctors are small (paper: none outside -4..4).
            codes[o.pos] = c;
            max_code = max_code.max(c.abs());
        }
        let sz_bytes = compress_quant_bins(&codes);
        let sz_bpo = sz_bytes.len() as f64 * 8.0 / outliers.len() as f64;
        println!(
            "{},{},{:.3},{sperr_bpo:.2},{sz_bpo:.2},{max_code}",
            f.abbrev(idx),
            outliers.len(),
            100.0 * outliers.len() as f64 / field.len() as f64
        );
    }
}
